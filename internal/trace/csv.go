package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is FieldNames plus the path column appended last.
func csvHeader() []string {
	return append(append([]string{}, FieldNames...), "path")
}

// WriteCSV writes records to w in EOS-log CSV form: a header row of
// FieldNames plus "path", then one row per access.
func WriteCSV(w io.Writer, records []EOSRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader()); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	row := make([]string, NumFields)
	for i := range records {
		r := &records[i]
		fields := r.Fields()
		for j, v := range fields {
			// Integral fields round-trip exactly; rt/wt keep precision.
			if v == float64(int64(v)) {
				row[j] = strconv.FormatInt(int64(v), 10)
			} else {
				row[j] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		row[len(fields)] = r.Path
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing CSV record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace previously written with WriteCSV.
func ReadCSV(r io.Reader) ([]EOSRecord, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	if len(header) != NumFields {
		return nil, fmt.Errorf("trace: CSV has %d columns, want %d", len(header), NumFields)
	}
	var out []EOSRecord
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading CSV line %d: %w", line, err)
		}
		rec, err := recordFromRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func recordFromRow(row []string) (EOSRecord, error) {
	var rec EOSRecord
	if len(row) != NumFields {
		return rec, fmt.Errorf("row has %d columns, want %d", len(row), NumFields)
	}
	ints := []*int64{
		&rec.RUID, &rec.RGID, &rec.TD, &rec.Host, &rec.LID,
		&rec.FID, &rec.FSID,
		&rec.OTS, &rec.OTMS, &rec.CTS, &rec.CTMS,
		&rec.RB, &rec.WB,
		&rec.SFwdB, &rec.SBwdB, &rec.SXlFwdB, &rec.SXlBwdB,
		&rec.NRC, &rec.NWC, &rec.NFwds, &rec.NBwds, &rec.NXlFwds, &rec.NXlBwds,
		nil, nil, // rt, wt handled as floats below
		&rec.OSize, &rec.CSize,
		&rec.SecGrps, &rec.SecRole, &rec.SecApp,
		&rec.Protocol,
	}
	for i, dst := range ints {
		if dst == nil {
			continue
		}
		v, err := strconv.ParseInt(row[i], 10, 64)
		if err != nil {
			return rec, fmt.Errorf("column %s: %w", FieldNames[i], err)
		}
		*dst = v
	}
	var err error
	if rec.RT, err = strconv.ParseFloat(row[23], 64); err != nil {
		return rec, fmt.Errorf("column rt: %w", err)
	}
	if rec.WT, err = strconv.ParseFloat(row[24], 64); err != nil {
		return rec, fmt.Errorf("column wt: %w", err)
	}
	rec.Path = row[NumFields-1]
	return rec, nil
}
