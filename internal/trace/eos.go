// Package trace provides the workload-trace substrate of the Geomancy
// reproduction: the CERN EOS access-log record format (one record per file
// interaction, open to close, described by 32 values — §V-D), CSV
// serialization, a synthetic EOS-log generator whose field↔throughput
// correlation structure reproduces Fig. 4, and the BELLE II file-set
// descriptor used by the live experiments (§IV).
//
// The real EOS logs are not redistributable; the generator documents, per
// field, the mechanism that produces its engineered correlation so the
// substitution is auditable.
package trace

import (
	"fmt"
	"math"
)

// EOSRecord mirrors one entry of the CERN EOS file-access log: a single
// file interaction from open to close. Field names follow the EOS log
// schema referenced by the paper (rb, wb, ots/otms, cts/ctms, fid, fsid,
// rt, wt, nrc, nwc, sec.grps, sec.role, sec.app, ...).
type EOSRecord struct {
	RUID int64 // user id of the requester
	RGID int64 // group id of the requester
	TD   int64 // trace descriptor / thread id
	Host int64 // numeric host index of the serving FST
	LID  int64 // layout id of the file

	FID  int64 // EOS file id
	FSID int64 // file-system (storage device) id

	OTS  int64 // open timestamp, seconds
	OTMS int64 // open timestamp, millisecond part
	CTS  int64 // close timestamp, seconds
	CTMS int64 // close timestamp, millisecond part

	RB int64 // bytes read
	WB int64 // bytes written

	SFwdB   int64 // bytes seeked forward
	SBwdB   int64 // bytes seeked backward
	SXlFwdB int64 // bytes of large forward seeks
	SXlBwdB int64 // bytes of large backward seeks

	NRC     int64 // number of read calls
	NWC     int64 // number of write calls
	NFwds   int64 // number of forward seeks
	NBwds   int64 // number of backward seeks
	NXlFwds int64 // number of large forward seeks
	NXlBwds int64 // number of large backward seeks

	RT float64 // cumulative time spent in read calls, ms
	WT float64 // cumulative time spent in write calls, ms

	OSize int64 // file size at open
	CSize int64 // file size at close

	SecGrps int64 // client group (categorical, numeric-coded)
	SecRole int64 // client role (categorical, numeric-coded)
	SecApp  int64 // application identifier (categorical, numeric-coded)

	Path     string // logical file path
	Protocol int64  // access protocol (categorical, numeric-coded)
}

// NumFields is the number of values describing one EOS access (§V-D:
// "Each access is described by 32 values").
const NumFields = 32

// Throughput returns the access throughput in bytes/second using the
// paper's formula: (rb+wb) / ((cts + ctms/1000) - (ots + otms/1000)).
// It returns 0 for a non-positive duration.
func (r *EOSRecord) Throughput() float64 {
	dur := r.Duration()
	if dur <= 0 {
		return 0
	}
	return float64(r.RB+r.WB) / dur
}

// Duration returns the open-to-close wall time in seconds.
func (r *EOSRecord) Duration() float64 {
	open := float64(r.OTS) + float64(r.OTMS)/1000
	cls := float64(r.CTS) + float64(r.CTMS)/1000
	return cls - open
}

// Validate reports structural problems with the record.
func (r *EOSRecord) Validate() error {
	if r.RB < 0 || r.WB < 0 {
		return fmt.Errorf("trace: negative byte counts rb=%d wb=%d", r.RB, r.WB)
	}
	if r.OTMS < 0 || r.OTMS > 999 || r.CTMS < 0 || r.CTMS > 999 {
		return fmt.Errorf("trace: millisecond parts out of range otms=%d ctms=%d", r.OTMS, r.CTMS)
	}
	if r.Duration() < 0 {
		return fmt.Errorf("trace: close before open (%d.%03d < %d.%03d)", r.CTS, r.CTMS, r.OTS, r.OTMS)
	}
	if math.IsNaN(r.RT) || math.IsNaN(r.WT) || r.RT < 0 || r.WT < 0 {
		return fmt.Errorf("trace: invalid rt=%v wt=%v", r.RT, r.WT)
	}
	return nil
}

// FieldNames lists the numeric fields in the order Fields returns them.
// These are the candidate model features examined in Fig. 4.
var FieldNames = []string{
	"ruid", "rgid", "td", "host", "lid",
	"fid", "fsid",
	"ots", "otms", "cts", "ctms",
	"rb", "wb",
	"sfwdb", "sbwdb", "sxlfwdb", "sxlbwdb",
	"nrc", "nwc", "nfwds", "nbwds", "nxlfwds", "nxlbwds",
	"rt", "wt",
	"osize", "csize",
	"secgrps", "secrole", "secapp",
	"protocol",
}

// Fields returns the record's numeric fields in FieldNames order. The path
// (the one non-numeric value of the 32) is excluded; features.PathEncoder
// converts it separately.
func (r *EOSRecord) Fields() []float64 {
	return []float64{
		float64(r.RUID), float64(r.RGID), float64(r.TD), float64(r.Host), float64(r.LID),
		float64(r.FID), float64(r.FSID),
		float64(r.OTS), float64(r.OTMS), float64(r.CTS), float64(r.CTMS),
		float64(r.RB), float64(r.WB),
		float64(r.SFwdB), float64(r.SBwdB), float64(r.SXlFwdB), float64(r.SXlBwdB),
		float64(r.NRC), float64(r.NWC), float64(r.NFwds), float64(r.NBwds),
		float64(r.NXlFwds), float64(r.NXlBwds),
		r.RT, r.WT,
		float64(r.OSize), float64(r.CSize),
		float64(r.SecGrps), float64(r.SecRole), float64(r.SecApp),
		float64(r.Protocol),
	}
}

// ChosenFeatureNames are the six features the paper selected for the live
// system (§V-D): bytes read/written, open and close timestamps (seconds
// and millisecond parts are folded into fractional seconds when modeling),
// the file id, and the file-system id.
var ChosenFeatureNames = []string{"rb", "wb", "ots", "cts", "fid", "fsid"}

// ChosenFeatures extracts the paper's six selected features, with the
// timestamps as fractional seconds.
func (r *EOSRecord) ChosenFeatures() []float64 {
	return []float64{
		float64(r.RB),
		float64(r.WB),
		float64(r.OTS) + float64(r.OTMS)/1000,
		float64(r.CTS) + float64(r.CTMS)/1000,
		float64(r.FID),
		float64(r.FSID),
	}
}
