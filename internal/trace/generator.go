package trace

import (
	"fmt"
	"math"
	"math/rand"

	"geomancy/internal/rng"
)

// GeneratorConfig parameterizes the synthetic EOS log generator.
type GeneratorConfig struct {
	// Seed makes the trace reproducible.
	Seed int64
	// Records is the number of accesses to generate.
	Records int
	// Devices is the number of distinct file systems (fsid values).
	Devices int
	// Files is the number of distinct files (fid values).
	Files int
	// StartTS is the UNIX timestamp of the first access.
	StartTS int64
	// MeanInterarrival is the mean seconds between successive opens.
	MeanInterarrival float64
}

// DefaultGeneratorConfig returns the configuration used by the Fig. 4
// reproduction: a day of accesses across a modest EOS analysis pool.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		Seed:             1,
		Records:          50000,
		Devices:          24,
		Files:            4000,
		StartTS:          1546300800, // 2019-01-01, the EOS trace vintage
		MeanInterarrival: 1.5,
	}
}

// Generator produces synthetic EOS access records whose correlation
// structure against throughput matches Fig. 4 of the paper:
//
//   - rb, wb, osize, csize: positive — bigger transfers amortize the
//     per-access latency floor, so they observe higher throughput.
//   - ots, cts (and weakly otms/ctms): positive — the simulated external
//     contention decays over the generated window, so later accesses are
//     faster.
//   - rt, wt: strongly negative — time spent inside read/write calls IS
//     the denominator of throughput.
//   - nrc, nwc, seek counters: mildly negative — chattier access patterns
//     waste time between transfers.
//   - fid, ruid, rgid, td, host, lid, secgrps, secrole, secapp, protocol:
//     ≈ 0 — assigned independently of performance.
//   - fsid: weakly positive — device ids are ordered so higher ids are
//     faster tiers, mirroring how the paper's fsid carried some locality
//     signal.
type Generator struct {
	cfg GeneratorConfig
	rng *rand.Rand

	fileSizes []int64
	fileDirs  []int
	now       float64
}

// NewGenerator returns a generator for the given configuration. Zero or
// negative counts fall back to the defaults.
func NewGenerator(cfg GeneratorConfig) *Generator {
	def := DefaultGeneratorConfig()
	if cfg.Records <= 0 {
		cfg.Records = def.Records
	}
	if cfg.Devices <= 0 {
		cfg.Devices = def.Devices
	}
	if cfg.Files <= 0 {
		cfg.Files = def.Files
	}
	if cfg.StartTS <= 0 {
		cfg.StartTS = def.StartTS
	}
	if cfg.MeanInterarrival <= 0 {
		cfg.MeanInterarrival = def.MeanInterarrival
	}
	g := &Generator{
		cfg: cfg,
		rng: rng.NewRand(cfg.Seed),
		now: float64(cfg.StartTS),
	}
	g.fileSizes = make([]int64, cfg.Files)
	g.fileDirs = make([]int, cfg.Files)
	for i := range g.fileSizes {
		// Log-uniform sizes from 256 MB to 1 GB: the ROOT-file working-set
		// band. Keeping the size spread narrower than the contention
		// spread is what lets the rt/wt columns pick up the (negative)
		// speed signal instead of the (positive) size signal.
		exp := 28 + g.rng.Float64()*2 // 2^28 .. 2^30
		g.fileSizes[i] = int64(math.Pow(2, exp))
		g.fileDirs[i] = g.rng.Intn(40)
	}
	return g
}

// deviceSpeed returns the sustained bytes/second of device fsid at time t.
// Devices are tiered (higher fsid ⇒ faster) and all devices see an
// external-contention wave that decays over the trace window, which is
// what makes ots/cts positively correlated with throughput.
func (g *Generator) deviceSpeed(fsid int, t float64) float64 {
	base := 200e6 * (1 + 3*float64(fsid)/float64(g.cfg.Devices))
	elapsed := t - float64(g.cfg.StartTS)
	// Contention factor starts at 0.45 and rises toward 1.0 over ~12h.
	relief := 0.45 + 0.55*(1-math.Exp(-elapsed/(12*3600)))
	// Diurnal ripple.
	ripple := 1 + 0.08*math.Sin(2*math.Pi*t/86400)
	return base * relief * ripple
}

// Next produces the next synthetic access record.
func (g *Generator) Next() EOSRecord {
	rng := g.rng
	g.now += rng.ExpFloat64() * g.cfg.MeanInterarrival
	fid := rng.Intn(g.cfg.Files)
	fsid := rng.Intn(g.cfg.Devices)
	size := g.fileSizes[fid]

	readHeavy := rng.Float64() < 0.85
	var rb, wb int64
	if readHeavy {
		rb = size/4 + rng.Int63n(size/2+1)
	} else {
		wb = size/4 + rng.Int63n(size/2+1)
		rb = rng.Int63n(size / 16)
	}

	// Effective per-access speed: the tiered device rate scaled by a
	// heavy-tailed contention factor. The wide (log-normal) contention
	// spread dominates the narrow size spread, which reproduces Fig. 4's
	// strongly negative rt/wt correlations: slow accesses spend their
	// time inside read/write calls.
	speed := g.deviceSpeed(fsid, g.now) * math.Exp(rng.NormFloat64()*0.7)
	// Per-access latency floor: dominated by open/close overhead and
	// metadata chatter. Chattier accesses (more calls) pay more of it.
	nrc := int64(1 + rng.Intn(64))
	nwc := int64(0)
	if wb > 0 {
		nwc = 1 + rng.Int63n(32)
	}
	latency := 0.05 + 0.004*float64(nrc+nwc) + rng.Float64()*0.3
	transfer := float64(rb+wb) / speed * (0.9 + 0.2*rng.Float64())
	dur := latency + transfer

	// Cumulative time inside read/write calls: the transfer itself plus
	// the per-call overhead chatter (which is also part of dur, making
	// rt/wt the direct complement of throughput).
	inCalls := transfer + 0.9*latency
	rt := inCalls * float64(rb) / float64(rb+wb+1) * 1000 // ms
	wt := inCalls * float64(wb) / float64(rb+wb+1) * 1000 // ms

	open := g.now
	cls := g.now + dur
	rec := EOSRecord{
		RUID: int64(1000 + rng.Intn(200)),
		RGID: int64(100 + rng.Intn(20)),
		TD:   rng.Int63n(1 << 20),
		Host: int64(rng.Intn(48)),
		LID:  int64(rng.Intn(8)),

		FID:  int64(fid + 1),
		FSID: int64(fsid + 1),

		OTS:  int64(open),
		OTMS: int64(open*1000) % 1000,
		CTS:  int64(cls),
		CTMS: int64(cls*1000) % 1000,

		RB: rb,
		WB: wb,

		SFwdB:   rng.Int63n(size/8 + 1),
		SBwdB:   rng.Int63n(size/16 + 1),
		SXlFwdB: rng.Int63n(size/32 + 1),
		SXlBwdB: rng.Int63n(size/64 + 1),

		NRC:     nrc,
		NWC:     nwc,
		NFwds:   rng.Int63n(nrc + 1),
		NBwds:   rng.Int63n(nrc/2 + 1),
		NXlFwds: rng.Int63n(4),
		NXlBwds: rng.Int63n(2),

		RT: rt,
		WT: wt,

		OSize: size,
		CSize: size + wb/2,

		SecGrps:  int64(rng.Intn(12)),
		SecRole:  int64(rng.Intn(4)),
		SecApp:   int64(rng.Intn(30)),
		Protocol: int64(rng.Intn(3)),

		Path: fmt.Sprintf("/eos/experiment/dir%02d/file%05d.root", g.fileDirs[fid], fid),
	}
	return rec
}

// Generate produces n records (or cfg.Records if n <= 0).
func (g *Generator) Generate(n int) []EOSRecord {
	if n <= 0 {
		n = g.cfg.Records
	}
	out := make([]EOSRecord, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
