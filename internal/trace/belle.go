package trace

import (
	"fmt"
	"math"
	"math/rand"

	"geomancy/internal/rng"
)

// BelleFileCount is the number of ROOT files in the BELLE II Monte-Carlo
// workload (§IV).
const BelleFileCount = 24

// BelleMinFileSize and BelleMaxFileSize bound the ROOT file sizes:
// "24 ROOT files of size from 583 KB to 1.1 GB" (§IV).
const (
	BelleMinFileSize = 583 * 1024
	BelleMaxFileSize = 1100 * 1024 * 1024
)

// BelleFile describes one ROOT file of the workload.
type BelleFile struct {
	// ID is the stable file identifier (1-based, mirroring EOS fid).
	ID int64
	// Path is the logical file path.
	Path string
	// Size is the file size in bytes.
	Size int64
}

// BelleFileSet generates the 24-file BELLE II working set with log-uniform
// sizes across the paper's range, deterministically from seed.
func BelleFileSet(seed int64) []BelleFile {
	rng := rng.NewRand(seed)
	files := make([]BelleFile, BelleFileCount)
	logMin := math.Log(float64(BelleMinFileSize))
	logMax := math.Log(float64(BelleMaxFileSize))
	for i := range files {
		var size int64
		switch i {
		case 0:
			size = BelleMinFileSize // pin the extremes the paper quotes
		case 1:
			size = BelleMaxFileSize
		default:
			size = int64(math.Exp(logMin + rng.Float64()*(logMax-logMin)))
		}
		files[i] = BelleFile{
			ID:   int64(i + 1),
			Path: fmt.Sprintf("/belle2/mc/run%02d/sim%02d.root", i/6, i),
			Size: size,
		}
	}
	return files
}

// BelleAccess is one step of the workload: op applied to a file.
type BelleAccess struct {
	// FileIndex indexes into the BelleFileSet slice.
	FileIndex int
	// Write marks the occasional output write; the workload is read-heavy.
	Write bool
	// Fraction is the portion of the file touched by this access.
	Fraction float64
}

// BelleRun produces the access sequence of one workload run: the suite
// walks its files and reads each 10–20 times in succession (§IV), with a
// small fraction of writes for simulation output.
func BelleRun(rng *rand.Rand, fileCount int) []BelleAccess {
	if fileCount <= 0 {
		fileCount = BelleFileCount
	}
	var seq []BelleAccess
	order := rng.Perm(fileCount)
	for _, fi := range order {
		repeats := 10 + rng.Intn(11) // 10..20 successive accesses
		for r := 0; r < repeats; r++ {
			a := BelleAccess{
				FileIndex: fi,
				Fraction:  0.3 + 0.7*rng.Float64(),
			}
			// ~5% of accesses write back simulation output.
			if rng.Float64() < 0.05 {
				a.Write = true
				a.Fraction *= 0.25
			}
			seq = append(seq, a)
		}
	}
	return seq
}
