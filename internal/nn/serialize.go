package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"geomancy/internal/rng"
)

// snapshot is the gob wire form of a network: enough to rebuild the
// architecture (via the zoo-style layer specs) and restore every weight.
type snapshot struct {
	Desc   string
	InSize int
	Window int
	Layers []LayerSpec
	// Params holds the flattened data of every parameter matrix in
	// Params() order.
	Params [][]float64
	// Opt, when non-nil, carries the optimizer mid-training (gob leaves
	// it nil when decoding snapshots written before the field existed).
	Opt *OptimizerState
}

// Save writes the network architecture and weights to w in gob format.
func (n *Network) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(n.snapshot())
}

// SaveWithOptimizer writes the network together with its optimizer, so a
// training run interrupted between epochs resumes with the optimizer's
// accumulated state (step counter and moments for Adam) instead of
// restarting its schedule. A nil optimizer is equivalent to Save.
func (n *Network) SaveWithOptimizer(w io.Writer, opt Optimizer) error {
	snap := n.snapshot()
	if opt != nil {
		st, err := OptimizerStateOf(opt)
		if err != nil {
			return err
		}
		snap.Opt = &st
	}
	return gob.NewEncoder(w).Encode(snap)
}

func (n *Network) snapshot() snapshot {
	snap := snapshot{
		Desc:   n.String(),
		InSize: n.InSize,
		Window: n.Window,
		Layers: n.layerSpecs(),
	}
	for _, p := range n.Params() {
		data := make([]float64, len(p.Data))
		copy(data, p.Data)
		snap.Params = append(snap.Params, data)
	}
	return snap
}

// Load reads a network previously written with Save (or
// SaveWithOptimizer, discarding the optimizer).
func Load(r io.Reader) (*Network, error) {
	net, _, err := LoadWithOptimizer(r)
	return net, err
}

// LoadWithOptimizer reads a network and, when the snapshot carries one,
// its optimizer. Snapshots written by plain Save return a nil Optimizer.
func LoadWithOptimizer(r io.Reader) (*Network, Optimizer, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, nil, fmt.Errorf("nn: decoding network: %w", err)
	}
	// Build with a throwaway rng; weights are overwritten below.
	rng := rng.NewRand(0)
	net := NewNetwork(snap.InSize)
	net.Window = snap.Window
	for i, spec := range snap.Layers {
		units := spec.Fixed
		if units == 0 {
			units = spec.UnitsZ * snap.InSize
		}
		switch spec.Kind {
		case "Dense":
			net.AddDense(units, spec.Act, rng)
		case "LSTM":
			if i != 0 {
				return nil, nil, fmt.Errorf("nn: snapshot has non-leading LSTM layer")
			}
			net.AddLSTM(units, spec.Act, rng)
		case "GRU":
			if i != 0 {
				return nil, nil, fmt.Errorf("nn: snapshot has non-leading GRU layer")
			}
			net.AddGRU(units, spec.Act, rng)
		case "SimpleRNN":
			if i != 0 {
				return nil, nil, fmt.Errorf("nn: snapshot has non-leading SimpleRNN layer")
			}
			net.AddSimpleRNN(units, spec.Act, rng)
		default:
			return nil, nil, fmt.Errorf("nn: snapshot has unknown layer kind %q", spec.Kind)
		}
	}
	params := net.Params()
	if len(params) != len(snap.Params) {
		return nil, nil, fmt.Errorf("nn: snapshot has %d parameter blocks, network needs %d",
			len(snap.Params), len(params))
	}
	for i, p := range params {
		if len(p.Data) != len(snap.Params[i]) {
			return nil, nil, fmt.Errorf("nn: snapshot parameter %d has %d values, want %d",
				i, len(snap.Params[i]), len(p.Data))
		}
		copy(p.Data, snap.Params[i])
	}
	net.Desc = snap.Desc
	if snap.Opt == nil {
		return net, nil, nil
	}
	opt, err := OptimizerFromState(*snap.Opt)
	if err != nil {
		return nil, nil, err
	}
	return net, opt, nil
}

// layerSpecs reconstructs the LayerSpec list describing this network. All
// widths are recorded as absolute (Fixed) so loading does not depend on Z
// multiples.
func (n *Network) layerSpecs() []LayerSpec {
	var specs []LayerSpec
	if n.rec != nil {
		switch l := n.rec.(type) {
		case *SimpleRNN:
			specs = append(specs, LayerSpec{Fixed: l.Out, Kind: "SimpleRNN", Act: l.Act})
		case *LSTM:
			specs = append(specs, LayerSpec{Fixed: l.Out, Kind: "LSTM", Act: l.Act})
		case *GRU:
			specs = append(specs, LayerSpec{Fixed: l.Out, Kind: "GRU", Act: l.Act})
		}
	}
	for _, fl := range n.flat {
		d := fl.(*Dense)
		specs = append(specs, LayerSpec{Fixed: d.Out, Kind: "Dense", Act: d.Act})
	}
	return specs
}
