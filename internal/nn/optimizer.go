package nn

import (
	"fmt"
	"math"

	"geomancy/internal/mat"
)

// Optimizer updates parameters from accumulated gradients. Step is called
// once per mini-batch; implementations must not retain the slices.
type Optimizer interface {
	Step(params, grads []*mat.Matrix)
}

// SGD is plain stochastic gradient descent, the optimizer the paper settled
// on after finding Adam gave a higher mean and standard deviation of the
// absolute relative error (§V-G).
type SGD struct {
	// LR is the learning rate.
	LR float64
	// Clip, when positive, bounds each gradient element to [-Clip, Clip].
	// The paper's diverging models (2 and 5 in Table II) are reproduced
	// with Clip = 0 (no clipping).
	Clip float64
}

// Step applies params -= LR * grads.
func (s *SGD) Step(params, grads []*mat.Matrix) {
	for i, p := range params {
		g := grads[i]
		if s.Clip > 0 {
			for j, v := range g.Data {
				if v > s.Clip {
					g.Data[j] = s.Clip
				} else if v < -s.Clip {
					g.Data[j] = -s.Clip
				}
			}
		}
		mat.AddScaled(p, -s.LR, g)
	}
}

// Adam implements the Adam optimizer (Kingma & Ba). The paper evaluated it
// and rejected it in favour of SGD; it is retained for the optimizer
// ablation benchmark.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m [][]float64
	v [][]float64
}

// NewAdam returns an Adam optimizer with the conventional defaults
// (β1 = 0.9, β2 = 0.999, ε = 1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies the Adam update. The first call sizes the moment buffers to
// match the parameter list; the same network must be passed on every call.
func (a *Adam) Step(params, grads []*mat.Matrix) {
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = make([]float64, len(p.Data))
			a.v[i] = make([]float64, len(p.Data))
		}
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		g := grads[i]
		m, v := a.m[i], a.v[i]
		for j, gv := range g.Data {
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*gv
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*gv*gv
			mHat := m[j] / c1
			vHat := v[j] / c2
			p.Data[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// OptimizerState is the serializable snapshot of an optimizer. For SGD it
// is just the hyperparameters; for Adam it additionally carries the step
// counter and both moment buffers, whose loss would otherwise reset the
// bias-corrected learning-rate schedule on resume (the moments rebuild in
// a few steps, but the restarted warm-up measurably bends the loss curve).
type OptimizerState struct {
	Kind string // "SGD" or "Adam"

	// SGD hyperparameters.
	LR, Clip float64

	// Adam hyperparameters and accumulated state.
	Beta1, Beta2, Eps float64
	T                 int
	M, V              [][]float64
}

// State captures the optimizer's hyperparameters.
func (s *SGD) State() OptimizerState {
	return OptimizerState{Kind: "SGD", LR: s.LR, Clip: s.Clip}
}

// State captures the optimizer, including the step counter and moment
// buffers, so a restored Adam continues its bias-correction schedule
// exactly where it left off.
func (a *Adam) State() OptimizerState {
	return OptimizerState{
		Kind:  "Adam",
		LR:    a.LR,
		Beta1: a.Beta1,
		Beta2: a.Beta2,
		Eps:   a.Eps,
		T:     a.t,
		M:     copyMoments(a.m),
		V:     copyMoments(a.v),
	}
}

func copyMoments(src [][]float64) [][]float64 {
	if src == nil {
		return nil
	}
	out := make([][]float64, len(src))
	for i, s := range src {
		out[i] = append([]float64(nil), s...)
	}
	return out
}

// OptimizerStateOf captures any optimizer this package knows how to
// serialize; unknown implementations return an error so callers fail
// loudly instead of silently dropping training state.
func OptimizerStateOf(opt Optimizer) (OptimizerState, error) {
	switch o := opt.(type) {
	case *SGD:
		return o.State(), nil
	case *Adam:
		return o.State(), nil
	default:
		return OptimizerState{}, fmt.Errorf("nn: cannot serialize optimizer %T", opt)
	}
}

// OptimizerFromState reconstructs the optimizer a state was captured
// from. An Adam resumes mid-schedule: its next Step continues from step
// T+1 with the restored moments.
func OptimizerFromState(st OptimizerState) (Optimizer, error) {
	switch st.Kind {
	case "SGD":
		return &SGD{LR: st.LR, Clip: st.Clip}, nil
	case "Adam":
		return &Adam{
			LR:    st.LR,
			Beta1: st.Beta1,
			Beta2: st.Beta2,
			Eps:   st.Eps,
			t:     st.T,
			m:     copyMoments(st.M),
			v:     copyMoments(st.V),
		}, nil
	default:
		return nil, fmt.Errorf("nn: unknown optimizer kind %q", st.Kind)
	}
}
