package nn

import (
	"math"

	"geomancy/internal/mat"
)

// Optimizer updates parameters from accumulated gradients. Step is called
// once per mini-batch; implementations must not retain the slices.
type Optimizer interface {
	Step(params, grads []*mat.Matrix)
}

// SGD is plain stochastic gradient descent, the optimizer the paper settled
// on after finding Adam gave a higher mean and standard deviation of the
// absolute relative error (§V-G).
type SGD struct {
	// LR is the learning rate.
	LR float64
	// Clip, when positive, bounds each gradient element to [-Clip, Clip].
	// The paper's diverging models (2 and 5 in Table II) are reproduced
	// with Clip = 0 (no clipping).
	Clip float64
}

// Step applies params -= LR * grads.
func (s *SGD) Step(params, grads []*mat.Matrix) {
	for i, p := range params {
		g := grads[i]
		if s.Clip > 0 {
			for j, v := range g.Data {
				if v > s.Clip {
					g.Data[j] = s.Clip
				} else if v < -s.Clip {
					g.Data[j] = -s.Clip
				}
			}
		}
		mat.AddScaled(p, -s.LR, g)
	}
}

// Adam implements the Adam optimizer (Kingma & Ba). The paper evaluated it
// and rejected it in favour of SGD; it is retained for the optimizer
// ablation benchmark.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m [][]float64
	v [][]float64
}

// NewAdam returns an Adam optimizer with the conventional defaults
// (β1 = 0.9, β2 = 0.999, ε = 1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies the Adam update. The first call sizes the moment buffers to
// match the parameter list; the same network must be passed on every call.
func (a *Adam) Step(params, grads []*mat.Matrix) {
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = make([]float64, len(p.Data))
			a.v[i] = make([]float64, len(p.Data))
		}
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		g := grads[i]
		m, v := a.m[i], a.v[i]
		for j, gv := range g.Data {
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*gv
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*gv*gv
			mHat := m[j] / c1
			vHat := v[j] / c2
			p.Data[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}
