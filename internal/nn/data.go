package nn

import (
	"fmt"
	"math"

	"geomancy/internal/mat"
)

// Dataset pairs a time-ordered feature matrix (one access per row, Z
// features per access) with the scalar throughput targets. Rows must be in
// chronological order: recurrent models consume windows of consecutive
// rows.
type Dataset struct {
	X *mat.Matrix
	Y []float64
}

// NewDataset validates and wraps features and targets.
func NewDataset(x *mat.Matrix, y []float64) *Dataset {
	if x.Rows != len(y) {
		panic(fmt.Sprintf("nn: dataset has %d feature rows but %d targets", x.Rows, len(y)))
	}
	return &Dataset{X: x, Y: y}
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.Rows }

// Slice returns the sub-dataset covering rows [from, to). The returned
// dataset shares storage with the original.
func (d *Dataset) Slice(from, to int) *Dataset {
	if from < 0 || to > d.Len() || from > to {
		panic(fmt.Sprintf("nn: Slice[%d:%d] out of range for %d samples", from, to, d.Len()))
	}
	x := &mat.Matrix{Rows: to - from, Cols: d.X.Cols, Data: d.X.Data[from*d.X.Cols : to*d.X.Cols]}
	return &Dataset{X: x, Y: d.Y[from:to]}
}

// Split divides the dataset chronologically into the paper's 60% train,
// 20% validation, 20% test partitions ("All three of these sets are
// separate sets of data that never appear in another set", §V-G).
func (d *Dataset) Split() (train, val, test *Dataset) {
	n := d.Len()
	trainEnd := n * 60 / 100
	valEnd := n * 80 / 100
	return d.Slice(0, trainEnd), d.Slice(trainEnd, valEnd), d.Slice(valEnd, n)
}

// Metrics summarizes prediction quality the way Tables II and III do.
type Metrics struct {
	// MARE is the mean absolute relative error, in percent.
	MARE float64
	// MAREStd is the standard deviation of the absolute relative error,
	// in percent.
	MAREStd float64
	// SignedRelErr is the mean of the signed relative error, in percent;
	// its sign drives the paper's AdjustedPrediction correction (§V-G).
	SignedRelErr float64
	// Diverged marks a model that failed to capture the target's mean and
	// variation — NaN/Inf output, or near-constant predictions against a
	// varying target (the paper's footnote to Table II).
	Diverged bool
	// N is the number of evaluated samples.
	N int
}

// String renders the metric as Table II does, e.g. "18.88 ± 16.92".
func (m Metrics) String() string {
	if m.Diverged {
		return "Diverged"
	}
	return fmt.Sprintf("%.2f ± %.2f", m.MARE, m.MAREStd)
}

// relErrFloor avoids dividing by near-zero targets when computing relative
// errors; targets are normalized throughputs in (0,1].
const relErrFloor = 1e-6

// Evaluate computes prediction-quality metrics for the network on ds.
func (n *Network) Evaluate(ds *Dataset) Metrics {
	preds, idx := n.Predict(ds)
	if len(preds) == 0 {
		return Metrics{Diverged: true}
	}
	targets := make([]float64, len(idx))
	for i, r := range idx {
		targets[i] = ds.Y[r]
	}
	return EvaluatePredictions(preds, targets)
}

// EvaluatePredictions computes the Table II metrics for parallel slices of
// predictions and targets, flooring relative-error denominators at 10% of
// the mean target magnitude. Without the floor a single access that lands
// in a deep contention trough (measured throughput near zero) contributes
// a quasi-infinite relative error and dominates the mean — the floor keeps
// the metric describing model quality rather than the target's tail.
func EvaluatePredictions(preds, targets []float64) Metrics {
	if len(preds) != len(targets) || len(preds) == 0 {
		return Metrics{Diverged: true}
	}
	var meanAbs float64
	for _, t := range targets {
		meanAbs += math.Abs(t)
	}
	meanAbs /= float64(len(targets))
	floor := 0.1 * meanAbs
	if floor < relErrFloor {
		floor = relErrFloor
	}
	var sum, sumSigned float64
	relErrs := make([]float64, len(preds))
	for i, p := range preds {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return Metrics{Diverged: true, N: len(preds)}
		}
		den := math.Abs(targets[i])
		if den < floor {
			den = floor
		}
		signed := (targets[i] - p) / den
		sumSigned += signed
		relErrs[i] = math.Abs(signed)
		sum += relErrs[i]
	}
	nf := float64(len(preds))
	mean := sum / nf
	var sq float64
	for _, e := range relErrs {
		d := e - mean
		sq += d * d
	}
	std := math.Sqrt(sq / nf)

	m := Metrics{
		MARE:         mean * 100,
		MAREStd:      std * 100,
		SignedRelErr: sumSigned / nf * 100,
		N:            len(preds),
	}
	// A model that emits (nearly) the same value for every input while the
	// targets vary has failed to capture the signal: the paper reports
	// such models as "Diverged". Numerically exploded weights that still
	// produce finite-but-astronomical outputs count as diverged too.
	if stddev(preds) < 1e-9 && stddev(targets) > 1e-6 {
		m.Diverged = true
	}
	if m.MARE > 1e6 {
		m.Diverged = true
	}
	return m
}

// AdjustPrediction applies the paper's MAE-based correction (§V-G), with
// the sign taken from the mean signed relative error (positive mean ⇒
// under-predicting ⇒ adjust up by MARE×prediction). Over-prediction
// divides by (1+MARE) rather than subtracting: the subtractive form goes
// negative once MARE exceeds 100% — routine for a freshly trained model
// on small windows — and a negative factor inverts the maximize-me
// ranking of candidate scores, steering placement toward the worst
// predicted device. The divisive form agrees to first order, is bounded
// below by zero, and preserves the prediction ordering for any MARE.
func AdjustPrediction(pred float64, m Metrics) float64 {
	mae := m.MARE / 100
	if m.SignedRelErr >= 0 {
		return pred + mae*pred
	}
	return pred / (1 + mae)
}

func stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var mean float64
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	var sq float64
	for _, v := range xs {
		d := v - mean
		sq += d * d
	}
	return math.Sqrt(sq / float64(len(xs)))
}
