package nn

import (
	"math/rand"
	"testing"

	"geomancy/internal/mat"
)

// benchInputs builds a batch of random feature rows for model 1.
func benchInputs(b *testing.B, batch int) (*Network, *mat.Matrix) {
	b.Helper()
	net, err := BuildModel(1, 6, rand.New(rand.NewSource(5)))
	if err != nil {
		b.Fatal(err)
	}
	return net, mat.FromRows(randomRows(rand.New(rand.NewSource(9)), batch, 6))
}

func benchmarkForwardPerSample(b *testing.B, batch int) {
	net, flat := benchInputs(b, batch)
	rows := make([][][]float64, batch)
	for r := 0; r < batch; r++ {
		rows[r] = [][]float64{flat.Row(r)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < batch; r++ {
			net.PredictOne(rows[r])
		}
	}
}

func benchmarkForwardBatch(b *testing.B, batch, workers int) {
	net, flat := benchInputs(b, batch)
	s := &Scratch{Parallelism: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(flat, nil, s)
	}
}

func BenchmarkForwardPerSample64(b *testing.B)  { benchmarkForwardPerSample(b, 64) }
func BenchmarkForwardPerSample256(b *testing.B) { benchmarkForwardPerSample(b, 256) }
func BenchmarkForwardBatch64(b *testing.B)      { benchmarkForwardBatch(b, 64, 1) }
func BenchmarkForwardBatch256(b *testing.B)     { benchmarkForwardBatch(b, 256, 1) }
func BenchmarkForwardBatch256x4(b *testing.B)   { benchmarkForwardBatch(b, 256, 4) }

func benchmarkFit(b *testing.B, par int) {
	ds := testDataset(rand.New(rand.NewSource(8)), 2000, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net, err := BuildModel(1, 6, rand.New(rand.NewSource(3)))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := net.Fit(ds, FitConfig{
			Epochs:      4,
			BatchSize:   32,
			Optimizer:   &SGD{LR: 0.05},
			Parallelism: par,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitSerial(b *testing.B)    { benchmarkFit(b, 1) }
func BenchmarkFitParallel4(b *testing.B) { benchmarkFit(b, 4) }
