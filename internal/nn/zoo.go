package nn

import (
	"fmt"
	"math/rand"
)

// LayerSpec describes one layer of a Table I architecture.
type LayerSpec struct {
	// UnitsZ is the layer width as a multiple of Z (the feature count).
	UnitsZ int
	// Fixed overrides UnitsZ with an absolute width when non-zero (the
	// single-neuron output layers).
	Fixed int
	// Kind is "Dense", "LSTM", "GRU" or "SimpleRNN".
	Kind string
	// Act is the layer activation.
	Act Activation
}

// ModelCount is the number of architectures compared in Table I.
const ModelCount = 23

// zooSpecs transcribes Table I. Each model is a list of layers in
// "units (kind) activation" form, with units expressed as multiples of Z.
//
// The published table has two typesetting artifacts: model 3's trailing
// "4Z" (interpreted as the standard 16Z-8Z-4Z-1 pyramid with a ReLU
// output) and models 8-11 whose repeated "Z (Dense) ReLU" rows ran
// together (interpreted as descending-depth Z-wide stacks: five, four, two
// and one hidden layers respectively, which matches the reported
// training-time ordering 8 > 9 > 10 > 11).
// Index 0 is unused; zooSpecs[n] is model n.
var zooSpecs = [ModelCount + 1][]LayerSpec{
	1:  {{UnitsZ: 16, Kind: "Dense", Act: ReLU}, {UnitsZ: 8, Kind: "Dense", Act: ReLU}, {UnitsZ: 4, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: Linear}},
	2:  {{UnitsZ: 16, Kind: "Dense", Act: ReLU}, {UnitsZ: 8, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: ReLU}},
	3:  {{UnitsZ: 16, Kind: "Dense", Act: ReLU}, {UnitsZ: 8, Kind: "Dense", Act: ReLU}, {UnitsZ: 4, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: ReLU}},
	4:  {{UnitsZ: 16, Kind: "Dense", Act: ReLU}, {UnitsZ: 8, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: Linear}},
	5:  {{UnitsZ: 16, Kind: "Dense", Act: Linear}, {UnitsZ: 8, Kind: "Dense", Act: Linear}, {UnitsZ: 4, Kind: "Dense", Act: Linear}, {UnitsZ: 1, Kind: "Dense", Act: Linear}, {Fixed: 1, Kind: "Dense", Act: ReLU}},
	6:  {{UnitsZ: 16, Kind: "Dense", Act: ReLU}, {UnitsZ: 16, Kind: "Dense", Act: ReLU}, {UnitsZ: 16, Kind: "Dense", Act: ReLU}, {UnitsZ: 16, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: ReLU}},
	7:  {{UnitsZ: 16, Kind: "Dense", Act: ReLU}, {UnitsZ: 16, Kind: "Dense", Act: ReLU}, {UnitsZ: 16, Kind: "Dense", Act: ReLU}, {UnitsZ: 16, Kind: "Dense", Act: ReLU}, {UnitsZ: 16, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: ReLU}},
	8:  {{UnitsZ: 1, Kind: "Dense", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: ReLU}},
	9:  {{UnitsZ: 1, Kind: "Dense", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: ReLU}},
	10: {{UnitsZ: 1, Kind: "Dense", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: Linear}},
	11: {{UnitsZ: 1, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: Linear}},
	12: {{UnitsZ: 1, Kind: "LSTM", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: Linear}},
	13: {{UnitsZ: 1, Kind: "GRU", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: Linear}},
	14: {{UnitsZ: 1, Kind: "SimpleRNN", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: Linear}},
	15: {{UnitsZ: 1, Kind: "GRU", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: Linear}},
	16: {{UnitsZ: 1, Kind: "GRU", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: Linear}},
	17: {{UnitsZ: 1, Kind: "GRU", Act: ReLU}, {UnitsZ: 4, Kind: "Dense", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: Linear}},
	18: {{UnitsZ: 1, Kind: "SimpleRNN", Act: ReLU}, {UnitsZ: 4, Kind: "Dense", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: Linear}},
	19: {{UnitsZ: 1, Kind: "SimpleRNN", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: Linear}},
	20: {{UnitsZ: 1, Kind: "SimpleRNN", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: Linear}},
	21: {{UnitsZ: 1, Kind: "LSTM", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: Linear}},
	22: {{UnitsZ: 1, Kind: "LSTM", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: Linear}},
	23: {{UnitsZ: 1, Kind: "LSTM", Act: ReLU}, {UnitsZ: 4, Kind: "Dense", Act: ReLU}, {UnitsZ: 1, Kind: "Dense", Act: ReLU}, {Fixed: 1, Kind: "Dense", Act: Linear}},
}

// ModelSpec returns the layer list for model number n (1..23).
func ModelSpec(n int) ([]LayerSpec, error) {
	if n < 1 || n > ModelCount {
		return nil, fmt.Errorf("nn: model number %d out of range 1..%d", n, ModelCount)
	}
	return zooSpecs[n], nil
}

// BuildModel constructs Table I architecture number n (1..23) for z input
// features. Model 1 is the architecture the paper deployed; model 18 is
// the recurrent runner-up.
func BuildModel(n, z int, rng *rand.Rand) (*Network, error) {
	if n < 1 || n > ModelCount {
		return nil, fmt.Errorf("nn: model number %d out of range 1..%d", n, ModelCount)
	}
	if z < 1 {
		return nil, fmt.Errorf("nn: feature count %d must be positive", z)
	}
	net := NewNetwork(z)
	for i, spec := range zooSpecs[n] {
		units := spec.Fixed
		if units == 0 {
			units = spec.UnitsZ * z
		}
		switch spec.Kind {
		case "Dense":
			net.AddDense(units, spec.Act, rng)
		case "LSTM":
			if i != 0 {
				return nil, fmt.Errorf("nn: model %d has a non-leading LSTM layer", n)
			}
			net.AddLSTM(units, spec.Act, rng)
		case "GRU":
			if i != 0 {
				return nil, fmt.Errorf("nn: model %d has a non-leading GRU layer", n)
			}
			net.AddGRU(units, spec.Act, rng)
		case "SimpleRNN":
			if i != 0 {
				return nil, fmt.Errorf("nn: model %d has a non-leading SimpleRNN layer", n)
			}
			net.AddSimpleRNN(units, spec.Act, rng)
		default:
			return nil, fmt.Errorf("nn: model %d has unknown layer kind %q", n, spec.Kind)
		}
	}
	net.Desc = net.String()
	return net, nil
}

// MustBuildModel is BuildModel for static model numbers; it panics on error.
func MustBuildModel(n, z int, rng *rand.Rand) *Network {
	net, err := BuildModel(n, z, rng)
	if err != nil {
		panic(err)
	}
	return net
}
