package nn

import (
	"math"
	"math/rand"
	"testing"

	"geomancy/internal/mat"
)

// lossFor computes the MSE loss of net on a fixed batch without touching
// gradients — the probe used by numerical differentiation.
func lossFor(net *Network, flat *mat.Matrix, seq []*mat.Matrix, y *mat.Matrix) float64 {
	pred := net.Forward(flat, seq)
	loss, _ := MSELoss(pred, y)
	return loss
}

// checkGradients compares every analytic gradient of net on the batch
// against a central-difference numerical estimate.
func checkGradients(t *testing.T, net *Network, flat *mat.Matrix, seq []*mat.Matrix, y *mat.Matrix) {
	t.Helper()
	const eps = 1e-5
	const tol = 1e-4

	net.ZeroGrads()
	pred := net.Forward(flat, seq)
	_, dOut := MSELoss(pred, y)
	net.Backward(dOut)

	params := net.Params()
	grads := net.GradsRef()
	for pi, p := range params {
		for i := range p.Data {
			orig := p.Data[i]
			p.Data[i] = orig + eps
			lossPlus := lossFor(net, flat, seq, y)
			p.Data[i] = orig - eps
			lossMinus := lossFor(net, flat, seq, y)
			p.Data[i] = orig

			numeric := (lossPlus - lossMinus) / (2 * eps)
			analytic := grads[pi].Data[i]
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if math.Abs(numeric-analytic)/scale > tol {
				t.Fatalf("param %d element %d: analytic %g vs numeric %g", pi, i, analytic, numeric)
			}
		}
	}
}

func denseBatch(rng *rand.Rand, b, z int) (*mat.Matrix, *mat.Matrix) {
	x := mat.New(b, z)
	y := mat.New(b, 1)
	x.Randomize(rng, 1)
	y.Randomize(rng, 1)
	return x, y
}

func seqBatch(rng *rand.Rand, steps, b, z int) ([]*mat.Matrix, *mat.Matrix) {
	seq := make([]*mat.Matrix, steps)
	for t := range seq {
		seq[t] = mat.New(b, z)
		seq[t].Randomize(rng, 1)
	}
	y := mat.New(b, 1)
	y.Randomize(rng, 1)
	return seq, y
}

func TestDenseGradients(t *testing.T) {
	for _, act := range []Activation{Linear, Tanh, Sigmoid} {
		t.Run(act.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(10))
			net := NewNetwork(4).AddDense(5, act, rng).AddDense(1, Linear, rng)
			x, y := denseBatch(rng, 3, 4)
			checkGradients(t, net, x, nil, y)
		})
	}
}

// ReLU gradients are only checked at inputs away from the kink; nudge any
// pre-activation magnitudes below a threshold by biasing the weights.
func TestDenseGradientsReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := NewNetwork(4).AddDense(6, ReLU, rng).AddDense(1, Linear, rng)
	// Large bias pushes activations away from the ReLU kink so the
	// numerical probe does not cross it.
	net.flat[0].(*Dense).B.Fill(0.7)
	x, y := denseBatch(rng, 3, 4)
	checkGradients(t, net, x, nil, y)
}

func TestDeepDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewNetwork(3).
		AddDense(7, Tanh, rng).
		AddDense(5, Sigmoid, rng).
		AddDense(4, Tanh, rng).
		AddDense(1, Linear, rng)
	x, y := denseBatch(rng, 4, 3)
	checkGradients(t, net, x, nil, y)
}

func TestSimpleRNNGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := NewNetwork(3)
	net.Window = 4
	net.AddSimpleRNN(5, Tanh, rng).AddDense(1, Linear, rng)
	seq, y := seqBatch(rng, 4, 3, 3)
	checkGradients(t, net, nil, seq, y)
}

func TestLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net := NewNetwork(3)
	net.Window = 4
	net.AddLSTM(4, Tanh, rng).AddDense(1, Linear, rng)
	seq, y := seqBatch(rng, 4, 2, 3)
	checkGradients(t, net, nil, seq, y)
}

func TestGRUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	net := NewNetwork(3)
	net.Window = 4
	net.AddGRU(4, Tanh, rng).AddDense(1, Linear, rng)
	seq, y := seqBatch(rng, 4, 2, 3)
	checkGradients(t, net, nil, seq, y)
}

func TestRecurrentWithDeepHeadGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	net := NewNetwork(3)
	net.Window = 3
	net.AddGRU(4, Tanh, rng).AddDense(6, Sigmoid, rng).AddDense(1, Linear, rng)
	seq, y := seqBatch(rng, 3, 2, 3)
	checkGradients(t, net, nil, seq, y)
}

func TestLSTMSingleStepGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	net := NewNetwork(2)
	net.Window = 1
	net.AddLSTM(3, Sigmoid, rng).AddDense(1, Linear, rng)
	seq, y := seqBatch(rng, 1, 2, 2)
	checkGradients(t, net, nil, seq, y)
}

func TestLongWindowGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	net := NewNetwork(2)
	net.Window = 9
	net.AddSimpleRNN(3, Tanh, rng).AddDense(1, Linear, rng)
	seq, y := seqBatch(rng, 9, 2, 2)
	checkGradients(t, net, nil, seq, y)
}
