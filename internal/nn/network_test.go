package nn

import (
	"math"
	"math/rand"
	"testing"

	"geomancy/internal/mat"
)

// synthDataset builds a dataset where the target is a smooth function of
// the features, rich enough to require a nonlinear fit.
func synthDataset(rng *rand.Rand, n, z int) *Dataset {
	x := mat.New(n, z)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < z; j++ {
			v := rng.Float64()
			x.Set(i, j, v)
			s += v * float64(j+1)
		}
		y[i] = 0.3 + 0.5*math.Sin(s)*math.Sin(s) // in (0,1)
	}
	return NewDataset(x, y)
}

// temporalDataset makes targets depend on the previous rows so recurrent
// models have signal to exploit.
func temporalDataset(rng *rand.Rand, n, z int) *Dataset {
	x := mat.New(n, z)
	y := make([]float64, n)
	prev := 0.5
	for i := 0; i < n; i++ {
		for j := 0; j < z; j++ {
			x.Set(i, j, rng.Float64())
		}
		y[i] = 0.7*prev + 0.3*x.At(i, 0)
		prev = y[i]
	}
	return NewDataset(x, y)
}

func TestFitReducesLossDense(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	ds := synthDataset(rng, 400, 4)
	net := NewNetwork(4).AddDense(16, ReLU, rng).AddDense(8, ReLU, rng).AddDense(1, Linear, rng)

	var first, last float64
	_, err := net.Fit(ds, FitConfig{
		Epochs: 40, BatchSize: 32, Optimizer: &SGD{LR: 0.05}, Rng: rng,
		Verbose: func(epoch int, loss float64) {
			if epoch == 0 {
				first = loss
			}
			last = loss
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(last < first*0.5) {
		t.Errorf("loss did not halve: first %g, last %g", first, last)
	}
}

func TestFitReducesLossRecurrent(t *testing.T) {
	for _, build := range []struct {
		name string
		add  func(n *Network, rng *rand.Rand)
	}{
		{"SimpleRNN", func(n *Network, rng *rand.Rand) { n.AddSimpleRNN(6, Tanh, rng) }},
		{"LSTM", func(n *Network, rng *rand.Rand) { n.AddLSTM(6, Tanh, rng) }},
		{"GRU", func(n *Network, rng *rand.Rand) { n.AddGRU(6, Tanh, rng) }},
	} {
		t.Run(build.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(21))
			ds := temporalDataset(rng, 300, 3)
			net := NewNetwork(3)
			net.Window = 6
			build.add(net, rng)
			net.AddDense(1, Linear, rng)

			var first, last float64
			_, err := net.Fit(ds, FitConfig{
				Epochs: 30, BatchSize: 16, Optimizer: &SGD{LR: 0.05}, Rng: rng,
				Verbose: func(epoch int, loss float64) {
					if epoch == 0 {
						first = loss
					}
					last = loss
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !(last < first*0.7) {
				t.Errorf("%s loss did not drop 30%%: first %g, last %g", build.name, first, last)
			}
		})
	}
}

func TestFitEmptyDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	net := NewNetwork(2).AddDense(1, Linear, rng)
	ds := NewDataset(mat.New(0, 2), nil)
	if _, err := net.Fit(ds, FitConfig{Epochs: 1}); err != ErrNoData {
		t.Errorf("Fit on empty dataset = %v, want ErrNoData", err)
	}
}

func TestRecurrentNeedsFullWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net := NewNetwork(2)
	net.Window = 10
	net.AddSimpleRNN(3, Tanh, rng).AddDense(1, Linear, rng)
	// Only 5 rows — fewer than the window — so no usable samples.
	ds := synthDataset(rng, 5, 2)
	if _, err := net.Fit(ds, FitConfig{Epochs: 1}); err != ErrNoData {
		t.Errorf("Fit with short history = %v, want ErrNoData", err)
	}
	preds, idx := net.Predict(ds)
	if preds != nil || idx != nil {
		t.Error("Predict with short history should return nil")
	}
}

func TestPredictAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	ds := synthDataset(rng, 50, 3)

	dense := NewNetwork(3).AddDense(4, ReLU, rng).AddDense(1, Linear, rng)
	preds, idx := dense.Predict(ds)
	if len(preds) != 50 || len(idx) != 50 || idx[0] != 0 {
		t.Errorf("dense Predict: %d preds, first idx %v", len(preds), idx[0])
	}

	rec := NewNetwork(3)
	rec.Window = 8
	rec.AddGRU(4, Tanh, rng).AddDense(1, Linear, rng)
	preds, idx = rec.Predict(ds)
	if len(preds) != 43 || idx[0] != 7 {
		t.Errorf("recurrent Predict: %d preds, first idx %d; want 43 preds starting at 7", len(preds), idx[0])
	}
}

func TestPredictOne(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	dense := NewNetwork(2).AddDense(3, ReLU, rng).AddDense(1, Linear, rng)
	v := dense.PredictOne([][]float64{{0.5, 0.2}})
	if math.IsNaN(v) {
		t.Error("PredictOne returned NaN")
	}
	// Consistency with batch Forward.
	x := mat.FromRows([][]float64{{0.5, 0.2}})
	if got := dense.Forward(x, nil).At(0, 0); got != v {
		t.Errorf("PredictOne %v != Forward %v", v, got)
	}

	rec := NewNetwork(2)
	rec.Window = 3
	rec.AddLSTM(3, Tanh, rng).AddDense(1, Linear, rng)
	rows := [][]float64{{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}}
	if v := rec.PredictOne(rows); math.IsNaN(v) {
		t.Error("recurrent PredictOne returned NaN")
	}
}

func TestPredictOnePanicsOnWrongShape(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	rec := NewNetwork(2)
	rec.Window = 3
	rec.AddLSTM(3, Tanh, rng).AddDense(1, Linear, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong window length")
		}
	}()
	rec.PredictOne([][]float64{{0.1, 0.2}})
}

func TestRecurrentMustBeFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	net := NewNetwork(2).AddDense(3, ReLU, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for recurrent layer after dense")
		}
	}()
	net.AddLSTM(3, Tanh, rng)
}

func TestMSELossKnownValues(t *testing.T) {
	pred := mat.FromSlice(2, 1, []float64{1, 3})
	target := mat.FromSlice(2, 1, []float64{0, 1})
	loss, grad := MSELoss(pred, target)
	if want := (1.0 + 4.0) / 2; loss != want {
		t.Errorf("loss = %v, want %v", loss, want)
	}
	if grad.At(0, 0) != 1 || grad.At(1, 0) != 2 {
		t.Errorf("grad = %v, want [1 2]", grad)
	}
}

func TestNetworkString(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	net := NewNetwork(6).AddDense(96, ReLU, rng).AddDense(1, Linear, rng)
	want := "96 (Dense) ReLU, 1 (Dense) Linear"
	if got := net.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	net := NewNetwork(4).AddDense(8, ReLU, rng).AddDense(1, Linear, rng)
	// 4*8+8 + 8*1+1 = 49
	if got := net.ParamCount(); got != 49 {
		t.Errorf("ParamCount = %d, want 49", got)
	}
}

func TestDivergenceReportedNotPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	ds := synthDataset(rng, 200, 4)
	net := NewNetwork(4).AddDense(32, ReLU, rng).AddDense(1, Linear, rng)
	// Absurd learning rate forces numeric blow-up.
	loss, err := net.Fit(ds, FitConfig{Epochs: 30, BatchSize: 16, Optimizer: &SGD{LR: 1e6}, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(loss) && !math.IsInf(loss, 0) && loss < 1e10 {
		t.Skip("training unexpectedly stable at extreme LR")
	}
	m := net.Evaluate(ds)
	if !m.Diverged {
		t.Error("Evaluate should report divergence after numeric blow-up")
	}
}

func TestEarlyStopping(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	ds := synthDataset(rng, 300, 3)
	train, val, _ := ds.Split()

	epochsRun := 0
	net := NewNetwork(3).AddDense(8, ReLU, rng).AddDense(1, Linear, rng)
	_, err := net.Fit(train, FitConfig{
		Epochs: 500, BatchSize: 32, Optimizer: &SGD{LR: 0.05}, Rng: rng,
		Validation: val, Patience: 5,
		Verbose: func(epoch int, loss float64) { epochsRun = epoch + 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if epochsRun >= 500 {
		t.Errorf("early stopping never fired (%d epochs)", epochsRun)
	}
	if epochsRun < 6 {
		t.Errorf("stopped suspiciously early (%d epochs)", epochsRun)
	}
}

func TestValidationLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ds := synthDataset(rng, 60, 3)
	net := NewNetwork(3).AddDense(4, ReLU, rng).AddDense(1, Linear, rng)
	vl := net.ValidationLoss(ds)
	if math.IsNaN(vl) || vl < 0 {
		t.Errorf("ValidationLoss = %v", vl)
	}
	empty := NewDataset(mat.New(0, 3), nil)
	if got := net.ValidationLoss(empty); !math.IsInf(got, 1) {
		t.Errorf("empty ValidationLoss = %v, want +Inf", got)
	}
}
