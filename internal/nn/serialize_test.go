package nn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestSaveLoadRoundTripDense(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	ds := synthDataset(rng, 100, 4)
	net := NewNetwork(4).AddDense(8, ReLU, rng).AddDense(1, Linear, rng)
	if _, err := net.Fit(ds, FitConfig{Epochs: 3, Optimizer: &SGD{LR: 0.05}, Rng: rng}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	in := [][]float64{{0.1, 0.9, 0.4, 0.7}}
	if got, want := loaded.PredictOne(in), net.PredictOne(in); got != want {
		t.Errorf("loaded prediction %v != original %v", got, want)
	}
	if loaded.String() != net.String() {
		t.Errorf("loaded desc %q != %q", loaded.String(), net.String())
	}
}

func TestSaveLoadRoundTripRecurrent(t *testing.T) {
	for n := 12; n <= 14; n++ {
		rng := rand.New(rand.NewSource(int64(51 + n)))
		net := MustBuildModel(n, 3, rng)
		net.Window = 4

		var buf bytes.Buffer
		if err := net.Save(&buf); err != nil {
			t.Fatalf("model %d save: %v", n, err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("model %d load: %v", n, err)
		}
		if loaded.Window != 4 {
			t.Errorf("model %d window = %d, want 4", n, loaded.Window)
		}
		rows := [][]float64{{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}, {0.7, 0.8, 0.9}, {0.2, 0.4, 0.6}}
		if got, want := loaded.PredictOne(rows), net.PredictOne(rows); got != want {
			t.Errorf("model %d loaded prediction %v != original %v", n, got, want)
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Error("Load of garbage should error")
	}
}

func TestSGDStepDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	net := NewNetwork(2).AddDense(1, Linear, rng)
	w := net.Params()[0]
	before := w.Clone()
	g := net.GradsRef()[0]
	g.Fill(1)
	(&SGD{LR: 0.1}).Step(net.Params(), net.GradsRef())
	for i := range w.Data {
		if got, want := w.Data[i], before.Data[i]-0.1; got != want {
			t.Errorf("param %d = %v, want %v", i, got, want)
		}
	}
}

func TestSGDClip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	net := NewNetwork(2).AddDense(1, Linear, rng)
	w := net.Params()[0]
	before := w.Clone()
	g := net.GradsRef()[0]
	g.Fill(100)
	(&SGD{LR: 0.1, Clip: 1}).Step(net.Params(), net.GradsRef())
	for i := range w.Data {
		if got, want := w.Data[i], before.Data[i]-0.1; got != want {
			t.Errorf("clipped param %d = %v, want %v", i, got, want)
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)^2 with Adam driving a single scalar parameter.
	rng := rand.New(rand.NewSource(62))
	net := NewNetwork(1).AddDense(1, Linear, rng)
	params := net.Params()
	grads := net.GradsRef()
	adam := NewAdam(0.1)
	w := params[0]
	for i := 0; i < 500; i++ {
		grads[0].Data[0] = 2 * (w.Data[0] - 3)
		grads[1].Data[0] = 0
		adam.Step(params, grads)
	}
	if d := w.Data[0] - 3; d > 0.01 || d < -0.01 {
		t.Errorf("Adam converged to %v, want 3", w.Data[0])
	}
}

func TestActivations(t *testing.T) {
	cases := []struct {
		act  Activation
		x    float64
		want float64
	}{
		{Linear, -2, -2},
		{ReLU, -2, 0},
		{ReLU, 2, 2},
		{Sigmoid, 0, 0.5},
		{Tanh, 0, 0},
	}
	for _, c := range cases {
		if got := c.act.Apply(c.x); got != c.want {
			t.Errorf("%v.Apply(%v) = %v, want %v", c.act, c.x, got, c.want)
		}
	}
	if got := Sigmoid.DerivFromOutput(0.5); got != 0.25 {
		t.Errorf("Sigmoid' at 0.5 = %v, want 0.25", got)
	}
	if got := Tanh.DerivFromOutput(0); got != 1 {
		t.Errorf("Tanh' at 0 = %v, want 1", got)
	}
	if got := ReLU.DerivFromOutput(0); got != 0 {
		t.Errorf("ReLU' at kink = %v, want 0", got)
	}
	if got := Linear.DerivFromOutput(123); got != 1 {
		t.Errorf("Linear' = %v, want 1", got)
	}
	if got := Activation(99).String(); got != "Activation(99)" {
		t.Errorf("unknown activation String = %q", got)
	}
}

func TestActivationUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Activation(99).Apply(1)
}
