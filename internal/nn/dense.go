package nn

import (
	"math"
	"math/rand"
	"strconv"

	"geomancy/internal/mat"
)

// layer is the behaviour shared by every layer kind: exposing parameters
// and their gradient accumulators to the optimizer.
type layer interface {
	// name returns the Table I-style description, e.g. "96 (Dense) ReLU".
	name() string
	// outSize is the width of the layer output.
	outSize() int
	params() []*mat.Matrix
	grads() []*mat.Matrix
}

// flatLayer consumes and produces B×F matrices (one row per sample).
type flatLayer interface {
	layer
	forward(x *mat.Matrix) *mat.Matrix
	// backward receives dLoss/dOutput and returns dLoss/dInput, adding
	// parameter gradients into the layer's accumulators.
	backward(dOut *mat.Matrix) *mat.Matrix
	// cloneShared returns a replica sharing this layer's parameter
	// matrices but owning private gradient accumulators and forward
	// caches, so worker replicas can backpropagate concurrently.
	cloneShared() flatLayer
}

// seqLayer consumes a sequence of T timestep matrices (each B×F) and emits
// the final hidden state as a B×H matrix. Recurrent layers appear only
// first in Table I networks, so backwardSeq does not return input grads.
type seqLayer interface {
	layer
	forwardSeq(steps []*mat.Matrix) *mat.Matrix
	backwardSeq(dOut *mat.Matrix)
	// cloneShared mirrors flatLayer.cloneShared for recurrent heads.
	cloneShared() seqLayer
}

// Dense is a fully connected layer computing act(X·W + b).
type Dense struct {
	In, Out int //geomancy:ephemeral In is re-derived from the previous layer's width when rebuilding from LayerSpecs
	Act     Activation

	W, B   *mat.Matrix // weights In×Out, bias 1×Out
	dW, dB *mat.Matrix //geomancy:ephemeral gradient scratch, recomputed by every backward pass

	lastIn, lastOut *mat.Matrix //geomancy:ephemeral forward-pass cache for backward, overwritten every step
}

// NewDense returns a dense layer with Xavier-initialized weights.
func NewDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out, Act: act,
		W:  mat.New(in, out),
		B:  mat.New(1, out),
		dW: mat.New(in, out),
		dB: mat.New(1, out),
	}
	d.W.XavierInit(rng, in, out)
	return d
}

func (d *Dense) name() string {
	return sprintfLayer(d.Out, "Dense", d.Act)
}

func (d *Dense) outSize() int          { return d.Out }
func (d *Dense) params() []*mat.Matrix { return []*mat.Matrix{d.W, d.B} }
func (d *Dense) grads() []*mat.Matrix  { return []*mat.Matrix{d.dW, d.dB} }

func (d *Dense) forward(x *mat.Matrix) *mat.Matrix {
	out := mat.Mul(x, d.W)
	out.AddRowVector(d.B)
	if d.Act != Linear {
		out.ApplyInPlace(d.Act.Apply)
	}
	d.lastIn, d.lastOut = x, out
	return out
}

func (d *Dense) cloneShared() flatLayer {
	return &Dense{
		In: d.In, Out: d.Out, Act: d.Act,
		W: d.W, B: d.B,
		dW: mat.New(d.In, d.Out),
		dB: mat.New(1, d.Out),
	}
}

// forwardInto computes act(x·W + b) into dst without touching the
// backward caches — the inference-only fast path. workers > 1 shards the
// GEMM's output rows; every row is bit-identical to the serial product.
func (d *Dense) forwardInto(dst, x *mat.Matrix, workers int) {
	if workers > 1 {
		mat.ParallelMulTo(dst, x, d.W, workers)
	} else {
		mat.MulTo(dst, x, d.W)
	}
	// Fused bias+activation epilogue: one pass over dst instead of an
	// AddRowVector pass plus a per-element method-value call. Each element
	// still computes act(v + b[j]), so results are bit-identical to the
	// per-sample forward path.
	bias := d.B.Data
	n := len(bias)
	switch d.Act {
	case ReLU:
		for r := 0; r < dst.Rows; r++ {
			row := dst.Data[r*n : (r+1)*n]
			for j, bv := range bias {
				v := row[j] + bv
				// Conditional on the integer bit pattern so the compiler
				// emits a branchless select: activation signs are close to
				// random, so a branch here mispredicts half the time. The
				// strict v < 0 test keeps −0 and NaN unchanged, exactly
				// like Activation.Apply.
				bits := math.Float64bits(v)
				if v < 0 {
					bits = 0
				}
				row[j] = math.Float64frombits(bits)
			}
		}
	case Linear:
		for r := 0; r < dst.Rows; r++ {
			row := dst.Data[r*n : (r+1)*n]
			for j, bv := range bias {
				row[j] += bv
			}
		}
	default:
		dst.AddRowVector(d.B)
		dst.ApplyInPlace(d.Act.Apply)
	}
}

func (d *Dense) backward(dOut *mat.Matrix) *mat.Matrix {
	dZ := dOut
	if d.Act != Linear {
		dZ = mat.New(dOut.Rows, dOut.Cols)
		for i := range dOut.Data {
			dZ.Data[i] = dOut.Data[i] * d.Act.DerivFromOutput(d.lastOut.Data[i])
		}
	}
	mat.AddInPlace(d.dW, mat.MulTransA(d.lastIn, dZ))
	mat.AddInPlace(d.dB, dZ.SumRows())
	return mat.MulTransB(dZ, d.W)
}

func sprintfLayer(units int, kind string, act Activation) string {
	return strconv.Itoa(units) + " (" + kind + ") " + act.String()
}
