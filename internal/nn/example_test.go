package nn_test

import (
	"fmt"
	"math/rand"

	"geomancy/internal/mat"
	"geomancy/internal/nn"
)

// ExampleBuildModel constructs the paper's deployed architecture (Table I
// model 1) and shows its layer description.
func ExampleBuildModel() {
	rng := rand.New(rand.NewSource(1))
	net, err := nn.BuildModel(1, 6, rng)
	if err != nil {
		panic(err)
	}
	fmt.Println(net)
	fmt.Println("recurrent:", net.IsRecurrent())
	// Output:
	// 96 (Dense) ReLU, 48 (Dense) ReLU, 24 (Dense) ReLU, 1 (Dense) Linear
	// recurrent: false
}

// ExampleNetwork_Fit trains a small regression network with the paper's
// optimizer (plain SGD) and reports the Table II-style error metric.
func ExampleNetwork_Fit() {
	rng := rand.New(rand.NewSource(2))
	// y = mean of the two features: trivially learnable.
	x := mat.New(200, 2)
	y := make([]float64, 200)
	for i := 0; i < 200; i++ {
		a, b := rng.Float64(), rng.Float64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = (a + b) / 2
	}
	ds := nn.NewDataset(x, y)
	train, _, test := ds.Split()

	net := nn.NewNetwork(2).AddDense(8, nn.ReLU, rng).AddDense(1, nn.Linear, rng)
	if _, err := net.Fit(train, nn.FitConfig{
		Epochs: 60, BatchSize: 16, Optimizer: &nn.SGD{LR: 0.1}, Rng: rng,
	}); err != nil {
		panic(err)
	}
	m := net.Evaluate(test)
	fmt.Println("diverged:", m.Diverged, "— MARE under 10%:", m.MARE < 10)
	// Output: diverged: false — MARE under 10%: true
}
