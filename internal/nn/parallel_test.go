package nn

import (
	"context"
	"math/rand"
	"testing"

	"geomancy/internal/mat"
)

// randomRows returns n random feature rows of width z.
func randomRows(rng *rand.Rand, n, z int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, z)
		for c := range rows[i] {
			rows[i][c] = rng.Float64()
		}
	}
	return rows
}

// testDataset builds a learnable synthetic dataset: y = mean(x) + noise.
func testDataset(rng *rand.Rand, n, z int) *Dataset {
	rows := randomRows(rng, n, z)
	y := make([]float64, n)
	for i, r := range rows {
		var s float64
		for _, v := range r {
			s += v
		}
		y[i] = s/float64(z) + 0.01*rng.Float64()
	}
	return NewDataset(mat.FromRows(rows), y)
}

// ForwardBatch must be bit-for-bit identical to Forward, to per-sample
// PredictOne calls, and to itself at any Scratch.Parallelism — for dense
// and recurrent architectures alike.
func TestForwardBatchMatchesForward(t *testing.T) {
	for _, model := range []int{1, 18, 21} { // dense, SimpleRNN, LSTM head
		rng := rand.New(rand.NewSource(5))
		net, err := BuildModel(model, 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		net.Window = 4
		const batch = 37
		drng := rand.New(rand.NewSource(9))
		var flat *mat.Matrix
		var seq []*mat.Matrix
		if net.IsRecurrent() {
			seq = make([]*mat.Matrix, net.Window)
			for ti := range seq {
				seq[ti] = mat.FromRows(randomRows(drng, batch, 6))
			}
		} else {
			flat = mat.FromRows(randomRows(drng, batch, 6))
		}
		want := net.Forward(flat, seq)
		for _, par := range []int{1, 4} {
			s := &Scratch{Parallelism: par}
			got := net.ForwardBatch(flat, seq, s)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("model %d parallelism %d: row %d ForwardBatch %v != Forward %v",
						model, par, i/want.Cols, got.Data[i], want.Data[i])
				}
			}
			// Reuse the scratch: buffers must not leak state between calls.
			again := net.ForwardBatch(flat, seq, s)
			for i := range want.Data {
				if again.Data[i] != want.Data[i] {
					t.Fatalf("model %d parallelism %d: scratch reuse diverged at %d", model, par, i)
				}
			}
		}
		// Per-sample equivalence: batching does not change any row's result.
		for r := 0; r < batch; r++ {
			var one float64
			if net.IsRecurrent() {
				win := make([][]float64, net.Window)
				for ti := range win {
					win[ti] = seq[ti].Row(r)
				}
				one = net.PredictOne(win)
			} else {
				one = net.PredictOne([][]float64{flat.Row(r)})
			}
			if one != want.At(r, 0) {
				t.Fatalf("model %d: per-sample row %d = %v, batched = %v", model, r, one, want.At(r, 0))
			}
		}
	}
}

// Training with any Parallelism ≥ 2 must produce one canonical result
// independent of the worker count: a batch always reduces as fixed 8-row
// chunks in chunk order.
func TestFitParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	train := func(par int) (float64, []*mat.Matrix) {
		rng := rand.New(rand.NewSource(3))
		net, err := BuildModel(1, 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		ds := testDataset(rand.New(rand.NewSource(8)), 200, 6)
		loss, err := net.Fit(ds, FitConfig{
			Epochs:      4,
			BatchSize:   32,
			Optimizer:   &SGD{LR: 0.05},
			Rng:         rand.New(rand.NewSource(2)),
			Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		return loss, net.Params()
	}
	refLoss, refParams := train(2)
	for _, par := range []int{3, 4, 8} {
		loss, params := train(par)
		if loss != refLoss {
			t.Errorf("parallelism %d: loss %v != parallelism 2 loss %v", par, loss, refLoss)
		}
		for pi := range params {
			for i := range params[pi].Data {
				if params[pi].Data[i] != refParams[pi].Data[i] {
					t.Fatalf("parallelism %d: param %d[%d] diverged", par, pi, i)
				}
			}
		}
	}
}

// Parallelism ≤ 1 must run the untouched serial path.
func TestFitSerialUnchangedByParallelismOne(t *testing.T) {
	train := func(par int) []*mat.Matrix {
		rng := rand.New(rand.NewSource(3))
		net, err := BuildModel(1, 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		ds := testDataset(rand.New(rand.NewSource(8)), 150, 6)
		if _, err := net.Fit(ds, FitConfig{
			Epochs:      3,
			BatchSize:   32,
			Optimizer:   &SGD{LR: 0.05},
			Rng:         rand.New(rand.NewSource(2)),
			Parallelism: par,
		}); err != nil {
			t.Fatal(err)
		}
		return net.Params()
	}
	a, b := train(0), train(1)
	for pi := range a {
		for i := range a[pi].Data {
			if a[pi].Data[i] != b[pi].Data[i] {
				t.Fatalf("Parallelism 0 and 1 diverged at param %d[%d]", pi, i)
			}
		}
	}
}

// A cancelled context stops Fit between epochs with ctx.Err().
func TestFitContextCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, err := BuildModel(1, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	ds := testDataset(rand.New(rand.NewSource(8)), 100, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := net.Fit(ds, FitConfig{Epochs: 50, Optimizer: &SGD{LR: 0.05}, Ctx: ctx}); err != context.Canceled {
		t.Errorf("Fit with cancelled ctx returned %v, want context.Canceled", err)
	}
}
