package nn

import (
	"bytes"
	"math/rand"
	"testing"
)

// fitLossCurve trains net for epochs and returns the per-epoch loss.
func fitLossCurve(t *testing.T, net *Network, ds *Dataset, opt Optimizer, epochs int, seed int64) []float64 {
	t.Helper()
	var curve []float64
	shuffle := rand.New(rand.NewSource(seed))
	_, err := net.Fit(ds, FitConfig{
		Epochs:    epochs,
		Optimizer: opt,
		Rng:       shuffle,
		Verbose:   func(_ int, loss float64) { curve = append(curve, loss) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return curve
}

// TestAdamStateRoundTrip: an Adam rebuilt from State must continue the
// parameter trajectory exactly — same step counter, same moments.
func TestAdamStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	net := NewNetwork(3).AddDense(6, ReLU, rng).AddDense(1, Linear, rng)
	ds := synthDataset(rng, 80, 3)
	opt := NewAdam(0.01)
	if _, err := net.Fit(ds, FitConfig{Epochs: 2, Optimizer: opt}); err != nil {
		t.Fatal(err)
	}

	restored, err := OptimizerFromState(opt.State())
	if err != nil {
		t.Fatal(err)
	}
	twin := mustCloneNet(t, net)

	for i := 0; i < 3; i++ {
		grads := net.GradsRef()
		for _, g := range grads {
			g.Fill(0.01 * float64(i+1))
		}
		opt.Step(net.Params(), grads)
		tg := twin.GradsRef()
		for _, g := range tg {
			g.Fill(0.01 * float64(i+1))
		}
		restored.Step(twin.Params(), tg)
	}
	assertSameParams(t, net, twin, "restored Adam diverged from original")
}

// TestSGDStateRoundTrip: SGD state is just hyperparameters; the round
// trip must preserve them.
func TestSGDStateRoundTrip(t *testing.T) {
	opt := &SGD{LR: 0.05, Clip: 1.5}
	restored, err := OptimizerFromState(opt.State())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := restored.(*SGD)
	if !ok {
		t.Fatalf("restored %T, want *SGD", restored)
	}
	if got.LR != opt.LR || got.Clip != opt.Clip {
		t.Errorf("restored SGD %+v, want %+v", got, opt)
	}
}

// TestSaveLoadWithOptimizerLossCurve is the regression test for the
// zeroed-Adam-moments-on-load bug: a training run split across a
// save/load boundary must produce the same loss curve as an
// uninterrupted run. Before SaveWithOptimizer existed, the reloaded run
// restarted Adam's bias-corrected warm-up with empty moment buffers and
// the curves bent apart.
func TestSaveLoadWithOptimizerLossCurve(t *testing.T) {
	const firstLeg, secondLeg = 4, 6

	// Uninterrupted reference run.
	rng := rand.New(rand.NewSource(71))
	ref := NewNetwork(3).AddDense(6, ReLU, rng).AddDense(1, Linear, rng)
	ds := synthDataset(rng, 120, 3)
	refOpt := NewAdam(0.01)
	refCurve := fitLossCurve(t, ref, ds, refOpt, firstLeg, 900)
	refCurve = append(refCurve, fitLossCurve(t, ref, ds, refOpt, secondLeg, 901)...)

	// Interrupted run: identical first leg, then a full save/load of
	// network + optimizer before the second leg.
	rng = rand.New(rand.NewSource(71))
	net := NewNetwork(3).AddDense(6, ReLU, rng).AddDense(1, Linear, rng)
	ds2 := synthDataset(rng, 120, 3)
	opt := NewAdam(0.01)
	curve := fitLossCurve(t, net, ds2, opt, firstLeg, 900)

	var buf bytes.Buffer
	if err := net.SaveWithOptimizer(&buf, opt); err != nil {
		t.Fatal(err)
	}
	loadedNet, loadedOpt, err := LoadWithOptimizer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loadedOpt == nil {
		t.Fatal("LoadWithOptimizer returned nil optimizer for a snapshot that has one")
	}
	curve = append(curve, fitLossCurve(t, loadedNet, ds2, loadedOpt, secondLeg, 901)...)

	if len(curve) != len(refCurve) {
		t.Fatalf("curve has %d epochs, reference %d", len(curve), len(refCurve))
	}
	for i := range refCurve {
		if curve[i] != refCurve[i] {
			t.Errorf("epoch %d: loss %v != reference %v (optimizer state lost across save/load?)",
				i, curve[i], refCurve[i])
		}
	}

	// And the bug the test guards against: dropping the optimizer state
	// must visibly change the continued curve, or the assertion above is
	// vacuous.
	rng = rand.New(rand.NewSource(71))
	stale := NewNetwork(3).AddDense(6, ReLU, rng).AddDense(1, Linear, rng)
	ds3 := synthDataset(rng, 120, 3)
	fitLossCurve(t, stale, ds3, NewAdam(0.01), firstLeg, 900)
	staleCurve := fitLossCurve(t, stale, ds3, NewAdam(0.01), secondLeg, 901) // fresh moments
	diverged := false
	for i := range staleCurve {
		if staleCurve[i] != refCurve[firstLeg+i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("fresh-optimizer run matched the reference; the round-trip assertion proves nothing")
	}
}

// TestLoadWithoutOptimizer: plain Save snapshots must load with a nil
// optimizer, not an error.
func TestLoadWithoutOptimizer(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	net := NewNetwork(2).AddDense(1, Linear, rng)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	_, opt, err := LoadWithOptimizer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if opt != nil {
		t.Errorf("optimizer %T from a snapshot saved without one", opt)
	}
}

// mustCloneNet round-trips a network through Save/Load to get an
// identical, independent copy.
func mustCloneNet(t *testing.T, net *Network) *Network {
	t.Helper()
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	clone, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return clone
}

func assertSameParams(t *testing.T, a, b *Network, msg string) {
	t.Helper()
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatalf("%s: %d vs %d parameter blocks", msg, len(pa), len(pb))
	}
	for i := range pa {
		for j := range pa[i].Data {
			if pa[i].Data[j] != pb[i].Data[j] {
				t.Fatalf("%s: param %d[%d]: %v != %v", msg, i, j, pa[i].Data[j], pb[i].Data[j])
			}
		}
	}
}
