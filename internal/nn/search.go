package nn

import (
	"fmt"
	"geomancy/internal/rng"
	"math"
	"sort"
	"time"
)

// SearchConfig controls a model search over the Table I zoo.
type SearchConfig struct {
	// Models lists the zoo numbers to try; nil means all 23.
	Models []int
	// Z is the input feature count.
	Z int
	// Epochs, BatchSize, LR configure training (paper: 200 epochs, plain
	// SGD).
	Epochs    int
	BatchSize int
	LR        float64
	// Window is the BPTT window for recurrent candidates.
	Window int
	// Seed makes the search reproducible.
	Seed int64
}

// SearchResult scores one candidate architecture.
type SearchResult struct {
	Model       int
	Desc        string
	Validation  Metrics
	Test        Metrics
	TrainTime   time.Duration
	PredictTime time.Duration
	Net         *Network
}

// Score is the search's ranking key: validation MARE, with divergence
// sorted to the bottom.
func (r SearchResult) Score() float64 {
	if r.Validation.Diverged {
		return math.Inf(1)
	}
	return r.Validation.MARE
}

// Search runs the paper's hyperparameter procedure (§V-G) as a library
// call: train every candidate on the 60% split, rank by validation MARE,
// and report test metrics plus timings. It returns the candidates ranked
// best first. The paper performed exactly this search to pick model 1.
func Search(ds *Dataset, cfg SearchConfig) ([]SearchResult, error) {
	if ds.Len() < 10 {
		return nil, fmt.Errorf("nn: search needs at least 10 samples, have %d", ds.Len())
	}
	if cfg.Z <= 0 {
		cfg.Z = ds.X.Cols
	}
	if cfg.Z != ds.X.Cols {
		return nil, fmt.Errorf("nn: search Z=%d but dataset has %d features", cfg.Z, ds.X.Cols)
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 200
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LR == 0 {
		cfg.LR = 0.05
	}
	models := cfg.Models
	if models == nil {
		for n := 1; n <= ModelCount; n++ {
			models = append(models, n)
		}
	}
	train, val, test := ds.Split()

	var out []SearchResult
	for _, n := range models {
		rng := rng.NewRand(cfg.Seed + int64(n)*977)
		net, err := BuildModel(n, cfg.Z, rng)
		if err != nil {
			return nil, err
		}
		if cfg.Window > 0 {
			net.Window = cfg.Window
		}
		start := time.Now() //geomancy:nondeterministic reported wall-clock timing; the search ranks by validation MARE only
		if _, err := net.Fit(train, FitConfig{
			Epochs:    cfg.Epochs,
			BatchSize: cfg.BatchSize,
			Optimizer: &SGD{LR: cfg.LR},
			Rng:       rng,
		}); err != nil {
			return nil, fmt.Errorf("nn: search model %d: %w", n, err)
		}
		trainTime := time.Since(start) //geomancy:nondeterministic reported wall-clock timing; the search ranks by validation MARE only

		start = time.Now() //geomancy:nondeterministic reported wall-clock timing; the search ranks by validation MARE only
		valM := net.Evaluate(val)
		testM := net.Evaluate(test)
		predictTime := time.Since(start) //geomancy:nondeterministic reported wall-clock timing; the search ranks by validation MARE only

		out = append(out, SearchResult{
			Model:       n,
			Desc:        net.String(),
			Validation:  valM,
			Test:        testM,
			TrainTime:   trainTime,
			PredictTime: predictTime,
			Net:         net,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score() < out[j].Score() })
	return out, nil
}
