package nn

import (
	"math/rand"

	"geomancy/internal/mat"
)

// SimpleRNN is the base recurrent layer: h_t = act(x_t·Wx + h_{t-1}·Wh + b).
// It consumes a window of consecutive accesses and emits the final hidden
// state, which downstream dense layers turn into a throughput prediction.
type SimpleRNN struct {
	In, Out int //geomancy:ephemeral In is re-derived from the input width when rebuilding from LayerSpecs
	Act     Activation

	Wx, Wh, B    *mat.Matrix
	dWx, dWh, dB *mat.Matrix //geomancy:ephemeral gradient scratch, recomputed by every backward pass

	// forward cache for BPTT
	inputs []*mat.Matrix //geomancy:ephemeral forward cache (T steps of B×In), overwritten every window
	hs     []*mat.Matrix //geomancy:ephemeral forward cache (T steps of B×Out, post-activation), overwritten every window
}

// NewSimpleRNN returns a SimpleRNN layer with Xavier-initialized weights.
func NewSimpleRNN(in, out int, act Activation, rng *rand.Rand) *SimpleRNN {
	r := &SimpleRNN{
		In: in, Out: out, Act: act,
		Wx: mat.New(in, out), Wh: mat.New(out, out), B: mat.New(1, out),
		dWx: mat.New(in, out), dWh: mat.New(out, out), dB: mat.New(1, out),
	}
	r.Wx.XavierInit(rng, in, out)
	r.Wh.XavierInit(rng, out, out)
	return r
}

func (r *SimpleRNN) name() string          { return sprintfLayer(r.Out, "SimpleRNN", r.Act) }
func (r *SimpleRNN) outSize() int          { return r.Out }
func (r *SimpleRNN) params() []*mat.Matrix { return []*mat.Matrix{r.Wx, r.Wh, r.B} }
func (r *SimpleRNN) grads() []*mat.Matrix  { return []*mat.Matrix{r.dWx, r.dWh, r.dB} }

func (r *SimpleRNN) cloneShared() seqLayer {
	return &SimpleRNN{
		In: r.In, Out: r.Out, Act: r.Act,
		Wx: r.Wx, Wh: r.Wh, B: r.B,
		dWx: mat.New(r.In, r.Out), dWh: mat.New(r.Out, r.Out), dB: mat.New(1, r.Out),
	}
}

func (r *SimpleRNN) forwardSeq(steps []*mat.Matrix) *mat.Matrix {
	batch := steps[0].Rows
	r.inputs = steps
	r.hs = r.hs[:0]
	h := mat.New(batch, r.Out)
	for _, x := range steps {
		z := mat.Mul(x, r.Wx)
		mat.AddInPlace(z, mat.Mul(h, r.Wh))
		z.AddRowVector(r.B)
		z.ApplyInPlace(r.Act.Apply)
		h = z
		r.hs = append(r.hs, h)
	}
	return h
}

func (r *SimpleRNN) backwardSeq(dOut *mat.Matrix) {
	batch := dOut.Rows
	dh := dOut.Clone()
	for t := len(r.inputs) - 1; t >= 0; t-- {
		h := r.hs[t]
		dz := mat.New(batch, r.Out)
		for i := range dh.Data {
			dz.Data[i] = dh.Data[i] * r.Act.DerivFromOutput(h.Data[i])
		}
		var hPrev *mat.Matrix
		if t > 0 {
			hPrev = r.hs[t-1]
		} else {
			hPrev = mat.New(batch, r.Out)
		}
		mat.AddInPlace(r.dWx, mat.MulTransA(r.inputs[t], dz))
		mat.AddInPlace(r.dWh, mat.MulTransA(hPrev, dz))
		mat.AddInPlace(r.dB, dz.SumRows())
		dh = mat.MulTransB(dz, r.Wh)
	}
}

// LSTM implements the standard long short-term memory cell:
//
//	i = σ(x·Wi + h·Ui + bi)      f = σ(x·Wf + h·Uf + bf)
//	o = σ(x·Wo + h·Uo + bo)      g = act(x·Wg + h·Ug + bg)
//	c_t = f∘c_{t-1} + i∘g        h_t = o ∘ act(c_t)
//
// with the candidate/output activation act configurable (Table I uses ReLU).
type LSTM struct {
	In, Out int //geomancy:ephemeral In is re-derived from the input width when rebuilding from LayerSpecs
	Act     Activation

	Wi, Ui, Bi *mat.Matrix
	Wf, Uf, Bf *mat.Matrix
	Wo, Uo, Bo *mat.Matrix
	Wg, Ug, Bg *mat.Matrix

	dWi, dUi, dBi *mat.Matrix //geomancy:ephemeral gradient scratch, recomputed by every backward pass
	dWf, dUf, dBf *mat.Matrix //geomancy:ephemeral gradient scratch, recomputed by every backward pass
	dWo, dUo, dBo *mat.Matrix //geomancy:ephemeral gradient scratch, recomputed by every backward pass
	dWg, dUg, dBg *mat.Matrix //geomancy:ephemeral gradient scratch, recomputed by every backward pass

	// forward cache
	inputs                 []*mat.Matrix //geomancy:ephemeral forward cache, overwritten every window
	is, fs, os, gs, cs, hs []*mat.Matrix //geomancy:ephemeral gate/state forward cache, overwritten every window
	acs                    []*mat.Matrix //geomancy:ephemeral act(c_t) forward cache, overwritten every window
}

// NewLSTM returns an LSTM layer with Xavier-initialized weights and a
// forget-gate bias of 1, the standard trick to ease early training.
func NewLSTM(in, out int, act Activation, rng *rand.Rand) *LSTM {
	l := &LSTM{In: in, Out: out, Act: act}
	gate := func(w, u, b **mat.Matrix, dw, du, db **mat.Matrix) {
		*w = mat.New(in, out)
		*u = mat.New(out, out)
		*b = mat.New(1, out)
		(*w).XavierInit(rng, in, out)
		(*u).XavierInit(rng, out, out)
		*dw = mat.New(in, out)
		*du = mat.New(out, out)
		*db = mat.New(1, out)
	}
	gate(&l.Wi, &l.Ui, &l.Bi, &l.dWi, &l.dUi, &l.dBi)
	gate(&l.Wf, &l.Uf, &l.Bf, &l.dWf, &l.dUf, &l.dBf)
	gate(&l.Wo, &l.Uo, &l.Bo, &l.dWo, &l.dUo, &l.dBo)
	gate(&l.Wg, &l.Ug, &l.Bg, &l.dWg, &l.dUg, &l.dBg)
	l.Bf.Fill(1)
	return l
}

func (l *LSTM) name() string { return sprintfLayer(l.Out, "LSTM", l.Act) }
func (l *LSTM) outSize() int { return l.Out }

func (l *LSTM) params() []*mat.Matrix {
	return []*mat.Matrix{l.Wi, l.Ui, l.Bi, l.Wf, l.Uf, l.Bf, l.Wo, l.Uo, l.Bo, l.Wg, l.Ug, l.Bg}
}

func (l *LSTM) grads() []*mat.Matrix {
	return []*mat.Matrix{l.dWi, l.dUi, l.dBi, l.dWf, l.dUf, l.dBf, l.dWo, l.dUo, l.dBo, l.dWg, l.dUg, l.dBg}
}

func (l *LSTM) cloneShared() seqLayer {
	c := &LSTM{
		In: l.In, Out: l.Out, Act: l.Act,
		Wi: l.Wi, Ui: l.Ui, Bi: l.Bi,
		Wf: l.Wf, Uf: l.Uf, Bf: l.Bf,
		Wo: l.Wo, Uo: l.Uo, Bo: l.Bo,
		Wg: l.Wg, Ug: l.Ug, Bg: l.Bg,
	}
	grad := func(dw, du, db **mat.Matrix) {
		*dw = mat.New(l.In, l.Out)
		*du = mat.New(l.Out, l.Out)
		*db = mat.New(1, l.Out)
	}
	grad(&c.dWi, &c.dUi, &c.dBi)
	grad(&c.dWf, &c.dUf, &c.dBf)
	grad(&c.dWo, &c.dUo, &c.dBo)
	grad(&c.dWg, &c.dUg, &c.dBg)
	return c
}

func (l *LSTM) forwardSeq(steps []*mat.Matrix) *mat.Matrix {
	batch := steps[0].Rows
	l.inputs = steps
	l.is, l.fs, l.os, l.gs = nil, nil, nil, nil
	l.cs, l.hs, l.acs = nil, nil, nil
	h := mat.New(batch, l.Out)
	c := mat.New(batch, l.Out)
	gate := func(x *mat.Matrix, w, u, b *mat.Matrix, act Activation) *mat.Matrix {
		z := mat.Mul(x, w)
		mat.AddInPlace(z, mat.Mul(h, u))
		z.AddRowVector(b)
		z.ApplyInPlace(act.Apply)
		return z
	}
	for _, x := range steps {
		i := gate(x, l.Wi, l.Ui, l.Bi, Sigmoid)
		f := gate(x, l.Wf, l.Uf, l.Bf, Sigmoid)
		o := gate(x, l.Wo, l.Uo, l.Bo, Sigmoid)
		g := gate(x, l.Wg, l.Ug, l.Bg, l.Act)
		cNew := mat.Hadamard(f, c)
		mat.AddInPlace(cNew, mat.Hadamard(i, g))
		ac := cNew.Apply(l.Act.Apply)
		hNew := mat.Hadamard(o, ac)

		l.is = append(l.is, i)
		l.fs = append(l.fs, f)
		l.os = append(l.os, o)
		l.gs = append(l.gs, g)
		l.cs = append(l.cs, cNew)
		l.acs = append(l.acs, ac)
		l.hs = append(l.hs, hNew)
		c, h = cNew, hNew
	}
	return h
}

func (l *LSTM) backwardSeq(dOut *mat.Matrix) {
	batch := dOut.Rows
	T := len(l.inputs)
	dh := dOut.Clone()
	dc := mat.New(batch, l.Out)
	deriv := func(vals *mat.Matrix, act Activation, upstream *mat.Matrix) *mat.Matrix {
		out := mat.New(batch, l.Out)
		for i := range out.Data {
			out.Data[i] = upstream.Data[i] * act.DerivFromOutput(vals.Data[i])
		}
		return out
	}
	for t := T - 1; t >= 0; t-- {
		i, f, o, g := l.is[t], l.fs[t], l.os[t], l.gs[t]
		ac := l.acs[t]
		var cPrev, hPrev *mat.Matrix
		if t > 0 {
			cPrev, hPrev = l.cs[t-1], l.hs[t-1]
		} else {
			cPrev = mat.New(batch, l.Out)
			hPrev = mat.New(batch, l.Out)
		}

		// h_t = o ∘ act(c_t)
		do := mat.Hadamard(dh, ac)
		dAc := mat.Hadamard(dh, o)
		mat.AddInPlace(dc, deriv(ac, l.Act, dAc))

		// c_t = f∘c_{t-1} + i∘g
		df := mat.Hadamard(dc, cPrev)
		di := mat.Hadamard(dc, g)
		dg := mat.Hadamard(dc, i)

		dzi := deriv(i, Sigmoid, di)
		dzf := deriv(f, Sigmoid, df)
		dzo := deriv(o, Sigmoid, do)
		dzg := deriv(g, l.Act, dg)

		x := l.inputs[t]
		acc := func(dz, w, u, dw, du, db *mat.Matrix) {
			mat.AddInPlace(dw, mat.MulTransA(x, dz))
			mat.AddInPlace(du, mat.MulTransA(hPrev, dz))
			mat.AddInPlace(db, dz.SumRows())
		}
		acc(dzi, l.Wi, l.Ui, l.dWi, l.dUi, l.dBi)
		acc(dzf, l.Wf, l.Uf, l.dWf, l.dUf, l.dBf)
		acc(dzo, l.Wo, l.Uo, l.dWo, l.dUo, l.dBo)
		acc(dzg, l.Wg, l.Ug, l.dWg, l.dUg, l.dBg)

		dh = mat.MulTransB(dzi, l.Ui)
		mat.AddInPlace(dh, mat.MulTransB(dzf, l.Uf))
		mat.AddInPlace(dh, mat.MulTransB(dzo, l.Uo))
		mat.AddInPlace(dh, mat.MulTransB(dzg, l.Ug))
		dc = mat.Hadamard(dc, f)
	}
}

// GRU implements the gated recurrent unit:
//
//	z = σ(x·Wz + h·Uz + bz)      r = σ(x·Wr + h·Ur + br)
//	ĥ = act(x·Wh + (r∘h)·Uh + bh)
//	h_t = (1-z)∘h_{t-1} + z∘ĥ
type GRU struct {
	In, Out int //geomancy:ephemeral In is re-derived from the input width when rebuilding from LayerSpecs
	Act     Activation

	Wz, Uz, Bz *mat.Matrix
	Wr, Ur, Br *mat.Matrix
	Wh, Uh, Bh *mat.Matrix

	dWz, dUz, dBz *mat.Matrix //geomancy:ephemeral gradient scratch, recomputed by every backward pass
	dWr, dUr, dBr *mat.Matrix //geomancy:ephemeral gradient scratch, recomputed by every backward pass
	dWh, dUh, dBh *mat.Matrix //geomancy:ephemeral gradient scratch, recomputed by every backward pass

	inputs          []*mat.Matrix //geomancy:ephemeral forward cache, overwritten every window
	zs, rs, hhs, hs []*mat.Matrix //geomancy:ephemeral gate/state forward cache, overwritten every window
}

// NewGRU returns a GRU layer with Xavier-initialized weights.
func NewGRU(in, out int, act Activation, rng *rand.Rand) *GRU {
	g := &GRU{In: in, Out: out, Act: act}
	gate := func(w, u, b **mat.Matrix, dw, du, db **mat.Matrix) {
		*w = mat.New(in, out)
		*u = mat.New(out, out)
		*b = mat.New(1, out)
		(*w).XavierInit(rng, in, out)
		(*u).XavierInit(rng, out, out)
		*dw = mat.New(in, out)
		*du = mat.New(out, out)
		*db = mat.New(1, out)
	}
	gate(&g.Wz, &g.Uz, &g.Bz, &g.dWz, &g.dUz, &g.dBz)
	gate(&g.Wr, &g.Ur, &g.Br, &g.dWr, &g.dUr, &g.dBr)
	gate(&g.Wh, &g.Uh, &g.Bh, &g.dWh, &g.dUh, &g.dBh)
	return g
}

func (g *GRU) name() string { return sprintfLayer(g.Out, "GRU", g.Act) }
func (g *GRU) outSize() int { return g.Out }

func (g *GRU) params() []*mat.Matrix {
	return []*mat.Matrix{g.Wz, g.Uz, g.Bz, g.Wr, g.Ur, g.Br, g.Wh, g.Uh, g.Bh}
}

func (g *GRU) grads() []*mat.Matrix {
	return []*mat.Matrix{g.dWz, g.dUz, g.dBz, g.dWr, g.dUr, g.dBr, g.dWh, g.dUh, g.dBh}
}

func (g *GRU) cloneShared() seqLayer {
	c := &GRU{
		In: g.In, Out: g.Out, Act: g.Act,
		Wz: g.Wz, Uz: g.Uz, Bz: g.Bz,
		Wr: g.Wr, Ur: g.Ur, Br: g.Br,
		Wh: g.Wh, Uh: g.Uh, Bh: g.Bh,
	}
	grad := func(dw, du, db **mat.Matrix) {
		*dw = mat.New(g.In, g.Out)
		*du = mat.New(g.Out, g.Out)
		*db = mat.New(1, g.Out)
	}
	grad(&c.dWz, &c.dUz, &c.dBz)
	grad(&c.dWr, &c.dUr, &c.dBr)
	grad(&c.dWh, &c.dUh, &c.dBh)
	return c
}

func (g *GRU) forwardSeq(steps []*mat.Matrix) *mat.Matrix {
	batch := steps[0].Rows
	g.inputs = steps
	g.zs, g.rs, g.hhs, g.hs = nil, nil, nil, nil
	h := mat.New(batch, g.Out)
	for _, x := range steps {
		z := mat.Mul(x, g.Wz)
		mat.AddInPlace(z, mat.Mul(h, g.Uz))
		z.AddRowVector(g.Bz)
		z.ApplyInPlace(Sigmoid.Apply)

		r := mat.Mul(x, g.Wr)
		mat.AddInPlace(r, mat.Mul(h, g.Ur))
		r.AddRowVector(g.Br)
		r.ApplyInPlace(Sigmoid.Apply)

		hh := mat.Mul(x, g.Wh)
		mat.AddInPlace(hh, mat.Mul(mat.Hadamard(r, h), g.Uh))
		hh.AddRowVector(g.Bh)
		hh.ApplyInPlace(g.Act.Apply)

		hNew := mat.New(batch, g.Out)
		for i := range hNew.Data {
			hNew.Data[i] = (1-z.Data[i])*h.Data[i] + z.Data[i]*hh.Data[i]
		}

		g.zs = append(g.zs, z)
		g.rs = append(g.rs, r)
		g.hhs = append(g.hhs, hh)
		g.hs = append(g.hs, hNew)
		h = hNew
	}
	return h
}

func (g *GRU) backwardSeq(dOut *mat.Matrix) {
	batch := dOut.Rows
	T := len(g.inputs)
	dh := dOut.Clone()
	for t := T - 1; t >= 0; t-- {
		z, r, hh := g.zs[t], g.rs[t], g.hhs[t]
		var hPrev *mat.Matrix
		if t > 0 {
			hPrev = g.hs[t-1]
		} else {
			hPrev = mat.New(batch, g.Out)
		}
		x := g.inputs[t]

		// h_t = (1-z)∘h_prev + z∘hh
		dz := mat.New(batch, g.Out)
		dhh := mat.New(batch, g.Out)
		dhPrev := mat.New(batch, g.Out)
		for i := range dh.Data {
			dz.Data[i] = dh.Data[i] * (hh.Data[i] - hPrev.Data[i])
			dhh.Data[i] = dh.Data[i] * z.Data[i]
			dhPrev.Data[i] = dh.Data[i] * (1 - z.Data[i])
		}

		// candidate: hh = act(x·Wh + (r∘hPrev)·Uh + bh)
		dzh := mat.New(batch, g.Out)
		for i := range dzh.Data {
			dzh.Data[i] = dhh.Data[i] * g.Act.DerivFromOutput(hh.Data[i])
		}
		rh := mat.Hadamard(r, hPrev)
		mat.AddInPlace(g.dWh, mat.MulTransA(x, dzh))
		mat.AddInPlace(g.dUh, mat.MulTransA(rh, dzh))
		mat.AddInPlace(g.dBh, dzh.SumRows())
		dRh := mat.MulTransB(dzh, g.Uh)
		dr := mat.Hadamard(dRh, hPrev)
		mat.AddInPlace(dhPrev, mat.Hadamard(dRh, r))

		// reset gate
		dzr := mat.New(batch, g.Out)
		for i := range dzr.Data {
			dzr.Data[i] = dr.Data[i] * Sigmoid.DerivFromOutput(r.Data[i])
		}
		mat.AddInPlace(g.dWr, mat.MulTransA(x, dzr))
		mat.AddInPlace(g.dUr, mat.MulTransA(hPrev, dzr))
		mat.AddInPlace(g.dBr, dzr.SumRows())
		mat.AddInPlace(dhPrev, mat.MulTransB(dzr, g.Ur))

		// update gate
		dzz := mat.New(batch, g.Out)
		for i := range dzz.Data {
			dzz.Data[i] = dz.Data[i] * Sigmoid.DerivFromOutput(z.Data[i])
		}
		mat.AddInPlace(g.dWz, mat.MulTransA(x, dzz))
		mat.AddInPlace(g.dUz, mat.MulTransA(hPrev, dzz))
		mat.AddInPlace(g.dBz, dzz.SumRows())
		mat.AddInPlace(dhPrev, mat.MulTransB(dzz, g.Uz))

		dh = dhPrev
	}
}
