// Package nn is a from-scratch neural-network library implementing exactly
// what the Geomancy DRL engine needs: fully connected (dense) layers and the
// three recurrent layer types of Table I (SimpleRNN, LSTM, GRU), ReLU and
// linear output activations, mean-squared-error loss, plain stochastic
// gradient descent (the paper's choice) plus Adam (the paper's rejected
// alternative), mini-batch training with backpropagation-through-time, the
// paper's 60/20/20 train/validation/test split, and the mean-absolute-
// relative-error metric used throughout the paper's evaluation.
//
// Networks are built either layer by layer or via BuildModel, which
// constructs any of the 23 architectures of Table I by number.
//
// A Network is not safe for concurrent use: layers cache forward-pass
// activations for the following backward pass.
package nn

import (
	"fmt"
	"math"
)

// Activation identifies an elementwise activation function. All activations
// used by the Geomancy model zoo have derivatives computable from the
// activation *output*, which lets layers cache only their outputs.
type Activation int

const (
	// Linear is the identity activation, used on regression output layers.
	Linear Activation = iota
	// ReLU is max(0, x); the paper's default hidden activation, chosen
	// because predicted throughput must be non-negative.
	ReLU
	// Sigmoid is 1/(1+e^-x); used internally by LSTM and GRU gates.
	Sigmoid
	// Tanh is the hyperbolic tangent; the conventional recurrent candidate
	// activation (the zoo overrides it with ReLU per Table I).
	Tanh
)

// String returns the activation name as it appears in Table I.
func (a Activation) String() string {
	switch a {
	case Linear:
		return "Linear"
	case ReLU:
		return "ReLU"
	case Sigmoid:
		return "Sigmoid"
	case Tanh:
		return "Tanh"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// Apply computes the activation value for x.
func (a Activation) Apply(x float64) float64 {
	switch a {
	case Linear:
		return x
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case Tanh:
		return math.Tanh(x)
	default:
		panic("nn: unknown activation " + a.String())
	}
}

// DerivFromOutput returns dActivation/dx expressed in terms of the
// activation output y = a.Apply(x). For ReLU the derivative at the kink
// (y == 0) is taken as 0.
func (a Activation) DerivFromOutput(y float64) float64 {
	switch a {
	case Linear:
		return 1
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return y * (1 - y)
	case Tanh:
		return 1 - y*y
	default:
		panic("nn: unknown activation " + a.String())
	}
}
