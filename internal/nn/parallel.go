package nn

import (
	"sync"
	"sync/atomic"

	"geomancy/internal/mat"
)

// Scratch holds preallocated activation buffers for ForwardBatch so a
// caller scoring many batches of the same shape (the engine scores one
// candidate batch per decision) allocates per-layer outputs once instead
// of once per layer per call. The zero value is ready to use; a Scratch
// must not be shared between concurrent ForwardBatch calls.
type Scratch struct {
	// Parallelism row-shards the dense-layer GEMMs across this many
	// goroutines when > 1. The result stays bit-identical to the serial
	// product for any setting.
	Parallelism int

	bufs []*mat.Matrix
}

// buf returns the i-th scratch buffer resized to rows×cols, reusing the
// previous allocation when the shape already matches.
func (s *Scratch) buf(i, rows, cols int) *mat.Matrix {
	for len(s.bufs) <= i {
		s.bufs = append(s.bufs, nil)
	}
	if b := s.bufs[i]; b != nil && b.Rows == rows && b.Cols == cols {
		return b
	}
	s.bufs[i] = mat.New(rows, cols)
	return s.bufs[i]
}

// ForwardBatch is the inference-only batched forward pass: one GEMM per
// dense layer over the whole B×Z input matrix, writing activations into
// scratch buffers instead of fresh allocations and leaving the backward
// caches untouched. Outputs are bit-for-bit identical to Forward (and to
// B separate PredictOne calls) — each output row's arithmetic order does
// not depend on the batch size or on Scratch.Parallelism. A nil scratch
// falls back to Forward. Recurrent heads run through the regular
// (allocating) sequence path; only the dense stack uses the scratch.
func (n *Network) ForwardBatch(flat *mat.Matrix, seq []*mat.Matrix, s *Scratch) *mat.Matrix {
	if s == nil {
		return n.Forward(flat, seq)
	}
	var h *mat.Matrix
	if n.rec != nil {
		if len(seq) == 0 {
			panic("nn: recurrent network requires a sequence input")
		}
		h = n.rec.forwardSeq(seq)
	} else {
		if flat == nil {
			panic("nn: dense network requires a flat input")
		}
		h = flat
	}
	for i, l := range n.flat {
		d, ok := l.(*Dense)
		if !ok {
			h = l.forward(h)
			continue
		}
		dst := s.buf(i, h.Rows, d.Out)
		d.forwardInto(dst, h, s.Parallelism)
		h = dst
	}
	return h
}

// cloneShared returns a worker replica of the network: it aliases every
// parameter matrix (so optimizer steps through the original are visible
// immediately) but owns private gradient accumulators and forward caches,
// letting replicas run forward/backward on disjoint sample shards
// concurrently.
func (n *Network) cloneShared() *Network {
	c := &Network{Desc: n.Desc, InSize: n.InSize, Window: n.Window}
	if n.rec != nil {
		c.rec = n.rec.cloneShared()
	}
	for _, l := range n.flat {
		c.flat = append(c.flat, l.cloneShared())
	}
	return c
}

// gradChunkRows is the fixed shard height of parallel gradient
// accumulation. The chunk structure — not the worker count — determines
// the floating-point reduction order, so training with any Parallelism ≥ 2
// produces one canonical result regardless of how many goroutines actually
// ran (a batch of 32 always reduces as four ordered 8-row chunks).
const gradChunkRows = 8

// fitBatchParallel accumulates one minibatch's gradient across fixed-size
// row chunks evaluated by the worker replicas, then reduces the chunk
// gradients into n's accumulators in chunk order. It returns the batch MSE
// (sum of squared errors over every chunk divided by the batch size),
// matching the serial path's loss semantics.
func (n *Network) fitBatchParallel(ds *Dataset, batch []int, workers []*Network, grads []*mat.Matrix) float64 {
	elems := len(batch) * n.OutSize()
	nChunks := (len(batch) + gradChunkRows - 1) / gradChunkRows
	sses := make([]float64, nChunks)
	chunkGrads := make([][]*mat.Matrix, nChunks)
	var next int64
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func(wk *Network) {
			defer wg.Done()
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				if c >= nChunks {
					return
				}
				lo := c * gradChunkRows
				hi := lo + gradChunkRows
				if hi > len(batch) {
					hi = len(batch)
				}
				flat, seq, y := wk.assembleBatch(ds, batch[lo:hi])
				pred := wk.Forward(flat, seq)
				sse, dOut := sseLoss(pred, y, elems)
				wk.ZeroGrads()
				wk.Backward(dOut)
				sses[c] = sse
				wgs := wk.GradsRef()
				snap := make([]*mat.Matrix, len(wgs))
				for i, g := range wgs {
					snap[i] = g.Clone()
				}
				chunkGrads[c] = snap
			}
		}(workers[w])
	}
	wg.Wait()
	for _, g := range grads {
		g.Zero()
	}
	var sse float64
	for c := 0; c < nChunks; c++ {
		sse += sses[c]
		for i, g := range chunkGrads[c] {
			mat.AddInPlace(grads[i], g)
		}
	}
	return sse / float64(elems)
}

// sseLoss is the shard form of MSELoss: it returns the un-normalized sum
// of squared errors for this shard while scaling the gradient by the full
// batch's element count, so per-chunk backward passes accumulate exactly
// the full-batch MSE gradient.
func sseLoss(pred, target *mat.Matrix, batchElems int) (float64, *mat.Matrix) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: sseLoss shape mismatch")
	}
	grad := mat.New(pred.Rows, pred.Cols)
	var sse float64
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		sse += d * d
		grad.Data[i] = 2 * d / float64(batchElems)
	}
	return sse, grad
}
