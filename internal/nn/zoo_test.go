package nn

import (
	"math/rand"
	"strings"
	"testing"

	"geomancy/internal/mat"
)

func TestBuildAllZooModels(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for n := 1; n <= ModelCount; n++ {
		net, err := BuildModel(n, 6, rng)
		if err != nil {
			t.Fatalf("model %d: %v", n, err)
		}
		if net.OutSize() != 1 {
			t.Errorf("model %d output width = %d, want 1", n, net.OutSize())
		}
		if net.InSize != 6 {
			t.Errorf("model %d InSize = %d, want 6", n, net.InSize)
		}
	}
}

func TestZooModelShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const z = 6
	m1 := MustBuildModel(1, z, rng)
	if got, want := m1.String(), "96 (Dense) ReLU, 48 (Dense) ReLU, 24 (Dense) ReLU, 1 (Dense) Linear"; got != want {
		t.Errorf("model 1 = %q, want %q", got, want)
	}
	if m1.IsRecurrent() {
		t.Error("model 1 should be dense")
	}

	m12 := MustBuildModel(12, z, rng)
	if !m12.IsRecurrent() {
		t.Error("model 12 should be recurrent")
	}
	if got, want := m12.String(), "6 (LSTM) ReLU, 1 (Dense) Linear"; got != want {
		t.Errorf("model 12 = %q, want %q", got, want)
	}

	m18 := MustBuildModel(18, z, rng)
	if got, want := m18.String(), "6 (SimpleRNN) ReLU, 24 (Dense) ReLU, 6 (Dense) ReLU, 1 (Dense) Linear"; got != want {
		t.Errorf("model 18 = %q, want %q", got, want)
	}
}

func TestZooRecurrentKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	recurrent := map[int]string{
		12: "LSTM", 13: "GRU", 14: "SimpleRNN",
		15: "GRU", 16: "GRU", 17: "GRU",
		18: "SimpleRNN", 19: "SimpleRNN", 20: "SimpleRNN",
		21: "LSTM", 22: "LSTM", 23: "LSTM",
	}
	for n := 1; n <= ModelCount; n++ {
		net := MustBuildModel(n, 4, rng)
		kind, wantRec := recurrent[n]
		if net.IsRecurrent() != wantRec {
			t.Errorf("model %d recurrent = %v, want %v", n, net.IsRecurrent(), wantRec)
			continue
		}
		if wantRec && !strings.Contains(net.String(), kind) {
			t.Errorf("model %d = %q, want kind %s", n, net.String(), kind)
		}
	}
}

func TestBuildModelErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	if _, err := BuildModel(0, 6, rng); err == nil {
		t.Error("model 0 should error")
	}
	if _, err := BuildModel(24, 6, rng); err == nil {
		t.Error("model 24 should error")
	}
	if _, err := BuildModel(1, 0, rng); err == nil {
		t.Error("z=0 should error")
	}
	if _, err := ModelSpec(0); err == nil {
		t.Error("ModelSpec(0) should error")
	}
	if spec, err := ModelSpec(1); err != nil || len(spec) != 4 {
		t.Errorf("ModelSpec(1) = %d layers, err %v; want 4 layers", len(spec), err)
	}
}

func TestMustBuildModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustBuildModel(99, 6, rand.New(rand.NewSource(44)))
}

// All 23 models must train at least one step and produce finite output —
// the smoke test the paper's model search depends on.
func TestAllZooModelsTrainable(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	ds := synthDataset(rng, 120, 6)
	for n := 1; n <= ModelCount; n++ {
		net := MustBuildModel(n, 6, rng)
		net.Window = 4
		if _, err := net.Fit(ds, FitConfig{Epochs: 2, BatchSize: 16, Optimizer: &SGD{LR: 0.01}, Rng: rng}); err != nil {
			t.Errorf("model %d failed to train: %v", n, err)
		}
		m := net.Evaluate(ds)
		if m.N == 0 {
			t.Errorf("model %d produced no predictions", n)
		}
	}
}

func TestZooParamCountsScaleWithZ(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	small := MustBuildModel(1, 6, rng).ParamCount()
	large := MustBuildModel(1, 13, rng).ParamCount()
	if large <= small {
		t.Errorf("model 1 params at Z=13 (%d) should exceed Z=6 (%d)", large, small)
	}
}

func TestEvaluatePredictionsKnownValues(t *testing.T) {
	// preds 10% below targets → MARE 10%, signed +10% (under-predicting).
	preds := []float64{0.9, 1.8, 2.7}
	targets := []float64{1, 2, 3}
	m := EvaluatePredictions(preds, targets)
	if m.Diverged {
		t.Fatal("unexpected divergence")
	}
	if m.MARE < 9.99 || m.MARE > 10.01 {
		t.Errorf("MARE = %v, want 10", m.MARE)
	}
	if m.SignedRelErr <= 0 {
		t.Errorf("SignedRelErr = %v, want positive (under-prediction)", m.SignedRelErr)
	}
	if m.MAREStd > 0.01 {
		t.Errorf("MAREStd = %v, want ~0", m.MAREStd)
	}
}

func TestEvaluatePredictionsDivergence(t *testing.T) {
	if m := EvaluatePredictions([]float64{1, 1, 1}, []float64{0.2, 0.9, 0.5}); !m.Diverged {
		t.Error("constant predictions vs varying targets should report Diverged")
	}
	nan := []float64{0.5, 0.5}
	nan[0] = nan[0] / 0 * 0 // NaN
	if m := EvaluatePredictions(nan, []float64{1, 2}); !m.Diverged {
		t.Error("NaN prediction should report Diverged")
	}
	if m := EvaluatePredictions(nil, nil); !m.Diverged {
		t.Error("empty input should report Diverged")
	}
	if m := EvaluatePredictions([]float64{1}, []float64{1, 2}); !m.Diverged {
		t.Error("length mismatch should report Diverged")
	}
}

func TestAdjustPrediction(t *testing.T) {
	under := Metrics{MARE: 10, SignedRelErr: 2}
	if got := AdjustPrediction(1.0, under); got != 1.1 {
		t.Errorf("under-prediction adjust = %v, want 1.1", got)
	}
	over := Metrics{MARE: 10, SignedRelErr: -2}
	if got := AdjustPrediction(1.0, over); got != 1.0/1.1 {
		t.Errorf("over-prediction adjust = %v, want %v", got, 1.0/1.1)
	}
	// A badly miscalibrated model (MARE > 100%) must still produce
	// positive, order-preserving scores.
	wild := Metrics{MARE: 4900, SignedRelErr: -40}
	lo, hi := AdjustPrediction(1.0, wild), AdjustPrediction(2.0, wild)
	if lo <= 0 || hi <= lo {
		t.Errorf("large-MARE adjust inverted or non-positive: f(1)=%v f(2)=%v", lo, hi)
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{MARE: 18.88, MAREStd: 16.92}
	if got := m.String(); got != "18.88 ± 16.92" {
		t.Errorf("String = %q", got)
	}
	if got := (Metrics{Diverged: true}).String(); got != "Diverged" {
		t.Errorf("diverged String = %q", got)
	}
}

func TestDatasetSplitProportions(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	ds := synthDataset(rng, 1000, 3)
	train, val, test := ds.Split()
	if train.Len() != 600 || val.Len() != 200 || test.Len() != 200 {
		t.Errorf("split = %d/%d/%d, want 600/200/200", train.Len(), val.Len(), test.Len())
	}
	// Chronological, disjoint: train ends where val starts.
	if &train.X.Data[0] != &ds.X.Data[0] {
		t.Error("train should alias the head of the dataset")
	}
	if val.Y[0] != ds.Y[600] || test.Y[0] != ds.Y[800] {
		t.Error("val/test do not start at the right offsets")
	}
}

func TestDatasetSliceBounds(t *testing.T) {
	ds := NewDataset(mat.New(10, 2), make([]float64, 10))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ds.Slice(5, 20)
}
