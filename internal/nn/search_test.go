package nn

import (
	"math/rand"
	"testing"
)

func TestSearchRanksModels(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	ds := synthDataset(rng, 400, 4)
	res, err := Search(ds, SearchConfig{
		Models: []int{1, 4, 11},
		Epochs: 15,
		Seed:   80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	// Ranked by validation score ascending.
	for i := 1; i < len(res); i++ {
		if res[i-1].Score() > res[i].Score() {
			t.Errorf("results not ranked: %v then %v", res[i-1].Score(), res[i].Score())
		}
	}
	for _, r := range res {
		if r.Net == nil || r.Desc == "" || r.TrainTime <= 0 {
			t.Errorf("result incomplete: %+v", r)
		}
	}
}

func TestSearchDefaultsToFullZoo(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	ds := synthDataset(rng, 120, 3)
	res, err := Search(ds, SearchConfig{Epochs: 1, Window: 4, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != ModelCount {
		t.Errorf("%d results, want %d", len(res), ModelCount)
	}
}

func TestSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	tiny := synthDataset(rng, 5, 3)
	if _, err := Search(tiny, SearchConfig{}); err == nil {
		t.Error("tiny dataset should error")
	}
	ds := synthDataset(rng, 100, 3)
	if _, err := Search(ds, SearchConfig{Z: 7}); err == nil {
		t.Error("mismatched Z should error")
	}
}

func TestSearchDivergedSortsLast(t *testing.T) {
	r := SearchResult{Validation: Metrics{Diverged: true}}
	good := SearchResult{Validation: Metrics{MARE: 50}}
	if r.Score() <= good.Score() {
		t.Error("diverged result must score worse than any converged one")
	}
}
