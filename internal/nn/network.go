package nn

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"geomancy/internal/mat"
)

// DefaultWindow is the sequence length recurrent models see: the number of
// consecutive past accesses folded into one training sample. Dense models
// ignore it.
const DefaultWindow = 8

// Network is a feed-forward stack, optionally headed by one recurrent layer
// (every recurrent architecture in Table I has exactly one, in first
// position). It predicts a scalar throughput from a feature vector (dense
// models) or from a window of consecutive feature vectors (recurrent
// models).
type Network struct {
	// Desc is the Table I-style architecture description.
	Desc string
	// InSize is the feature count Z.
	InSize int
	// Window is the BPTT window for recurrent networks (DefaultWindow if
	// unset at build time); 1 effectively for dense networks.
	Window int

	rec  seqLayer
	flat []flatLayer
}

// NewNetwork returns an empty network expecting inSize input features.
func NewNetwork(inSize int) *Network {
	return &Network{InSize: inSize, Window: DefaultWindow}
}

// AddDense appends a fully connected layer of the given width.
func (n *Network) AddDense(units int, act Activation, rng *rand.Rand) *Network {
	n.flat = append(n.flat, NewDense(n.lastSize(), units, act, rng))
	return n
}

// AddSimpleRNN sets the recurrent head; valid only as the first layer.
func (n *Network) AddSimpleRNN(units int, act Activation, rng *rand.Rand) *Network {
	n.setRecurrent(NewSimpleRNN(n.InSize, units, act, rng))
	return n
}

// AddLSTM sets the recurrent head; valid only as the first layer.
func (n *Network) AddLSTM(units int, act Activation, rng *rand.Rand) *Network {
	n.setRecurrent(NewLSTM(n.InSize, units, act, rng))
	return n
}

// AddGRU sets the recurrent head; valid only as the first layer.
func (n *Network) AddGRU(units int, act Activation, rng *rand.Rand) *Network {
	n.setRecurrent(NewGRU(n.InSize, units, act, rng))
	return n
}

func (n *Network) setRecurrent(l seqLayer) {
	if n.rec != nil || len(n.flat) > 0 {
		panic("nn: recurrent layer must be the first layer")
	}
	n.rec = l
}

func (n *Network) lastSize() int {
	if len(n.flat) > 0 {
		return n.flat[len(n.flat)-1].outSize()
	}
	if n.rec != nil {
		return n.rec.outSize()
	}
	return n.InSize
}

// IsRecurrent reports whether the network consumes access windows rather
// than single feature vectors.
func (n *Network) IsRecurrent() bool { return n.rec != nil }

// OutSize returns the width of the network output (1 for every Table I
// model).
func (n *Network) OutSize() int { return n.lastSize() }

// String returns the architecture in Table I notation.
func (n *Network) String() string {
	if n.Desc != "" {
		return n.Desc
	}
	var parts []string
	if n.rec != nil {
		parts = append(parts, n.rec.name())
	}
	for _, l := range n.flat {
		parts = append(parts, l.name())
	}
	return strings.Join(parts, ", ")
}

// Params returns all trainable parameter matrices in layer order.
func (n *Network) Params() []*mat.Matrix {
	var ps []*mat.Matrix
	if n.rec != nil {
		ps = append(ps, n.rec.params()...)
	}
	for _, l := range n.flat {
		ps = append(ps, l.params()...)
	}
	return ps
}

// GradsRef returns the matching gradient accumulators.
func (n *Network) GradsRef() []*mat.Matrix {
	var gs []*mat.Matrix
	if n.rec != nil {
		gs = append(gs, n.rec.grads()...)
	}
	for _, l := range n.flat {
		gs = append(gs, l.grads()...)
	}
	return gs
}

// ZeroGrads clears every gradient accumulator; called before each batch.
func (n *Network) ZeroGrads() {
	for _, g := range n.GradsRef() {
		g.Zero()
	}
}

// ParamCount returns the number of trainable scalars.
func (n *Network) ParamCount() int {
	var c int
	for _, p := range n.Params() {
		c += len(p.Data)
	}
	return c
}

// Forward runs a batch through the network. For dense networks pass the
// B×Z feature matrix in flat and nil for seq; for recurrent networks pass
// the T timestep matrices (each B×Z) in seq and nil for flat. The result
// is B×OutSize.
func (n *Network) Forward(flat *mat.Matrix, seq []*mat.Matrix) *mat.Matrix {
	var h *mat.Matrix
	if n.rec != nil {
		if len(seq) == 0 {
			panic("nn: recurrent network requires a sequence input")
		}
		h = n.rec.forwardSeq(seq)
	} else {
		if flat == nil {
			panic("nn: dense network requires a flat input")
		}
		h = flat
	}
	for _, l := range n.flat {
		h = l.forward(h)
	}
	return h
}

// Backward propagates dLoss/dOutput through the stack, accumulating
// parameter gradients. Forward must have been called immediately before.
func (n *Network) Backward(dOut *mat.Matrix) {
	g := dOut
	for i := len(n.flat) - 1; i >= 0; i-- {
		g = n.flat[i].backward(g)
	}
	if n.rec != nil {
		n.rec.backwardSeq(g)
	}
}

// FitConfig controls a training run.
type FitConfig struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	// Shuffle reshuffles sample order each epoch when an Rng is provided.
	Rng *rand.Rand
	// Verbose, when non-nil, receives one line per epoch.
	Verbose func(epoch int, trainLoss float64)
	// Validation, when non-nil together with Patience > 0, enables early
	// stopping: training halts when the validation loss has not improved
	// for Patience consecutive epochs.
	Validation *Dataset
	Patience   int
	// Parallelism shards each minibatch's gradient accumulation across
	// this many worker replicas. Values ≤ 1 train serially — bit-for-bit
	// the single-goroutine path. Any value ≥ 2 produces one canonical
	// result independent of the actual worker count: the batch is split
	// into fixed-size chunks whose gradients reduce in chunk order (see
	// gradChunkRows), so equal seeds replay identically on any machine
	// with at least two workers configured.
	Parallelism int
	// Ctx, when non-nil, cancels training between epochs; Fit returns the
	// loss so far together with ctx.Err().
	Ctx context.Context
}

// ErrNoData is returned when a dataset has no usable samples.
var ErrNoData = errors.New("nn: dataset has no samples")

// Fit trains the network on ds with mini-batch gradient descent and MSE
// loss, returning the final training loss. The same entry point serves
// dense and recurrent models; recurrent sample windows are assembled from
// consecutive dataset rows.
func (n *Network) Fit(ds *Dataset, cfg FitConfig) (float64, error) {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = &SGD{LR: 0.01}
	}
	idx := n.sampleIndexes(ds)
	if len(idx) == 0 {
		return 0, ErrNoData
	}
	params := n.Params()
	grads := n.GradsRef()

	// Worker replicas for parallel gradient accumulation: they alias the
	// parameters but own their gradients and caches.
	var workers []*Network
	if cfg.Parallelism > 1 {
		workers = make([]*Network, cfg.Parallelism)
		for i := range workers {
			workers[i] = n.cloneShared()
		}
	}

	var lastLoss float64
	bestVal := math.Inf(1)
	sinceBest := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Ctx != nil {
			if err := cfg.Ctx.Err(); err != nil {
				return lastLoss, err
			}
		}
		if cfg.Rng != nil {
			cfg.Rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		}
		var epochLoss float64
		var batches int
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			var loss float64
			if workers != nil {
				loss = n.fitBatchParallel(ds, batch, workers, grads)
			} else {
				flat, seq, y := n.assembleBatch(ds, batch)
				pred := n.Forward(flat, seq)
				var dOut *mat.Matrix
				loss, dOut = MSELoss(pred, y)
				n.ZeroGrads()
				n.Backward(dOut)
			}
			epochLoss += loss
			batches++
			cfg.Optimizer.Step(params, grads)
		}
		lastLoss = epochLoss / float64(batches)
		if cfg.Verbose != nil {
			cfg.Verbose(epoch, lastLoss)
		}
		if math.IsNaN(lastLoss) || math.IsInf(lastLoss, 0) {
			// Numerically diverged; further epochs cannot recover.
			return lastLoss, nil
		}
		if cfg.Validation != nil && cfg.Patience > 0 {
			vl := n.ValidationLoss(cfg.Validation)
			if vl < bestVal-1e-12 {
				bestVal = vl
				sinceBest = 0
			} else {
				sinceBest++
				if sinceBest >= cfg.Patience {
					return lastLoss, nil // early stop
				}
			}
		}
	}
	return lastLoss, nil
}

// ValidationLoss computes the MSE of the network over ds without
// training.
func (n *Network) ValidationLoss(ds *Dataset) float64 {
	idx := n.sampleIndexes(ds)
	if len(idx) == 0 {
		return math.Inf(1)
	}
	const chunk = 256
	var total float64
	var count int
	for start := 0; start < len(idx); start += chunk {
		end := start + chunk
		if end > len(idx) {
			end = len(idx)
		}
		batch := idx[start:end]
		flat, seq, y := n.assembleBatch(ds, batch)
		pred := n.Forward(flat, seq)
		loss, _ := MSELoss(pred, y)
		total += loss * float64(len(batch))
		count += len(batch)
	}
	return total / float64(count)
}

// sampleIndexes returns the dataset row indexes usable as sample anchors:
// every row for dense models, rows with a full history window for
// recurrent ones.
func (n *Network) sampleIndexes(ds *Dataset) []int {
	first := 0
	if n.rec != nil {
		first = n.window() - 1
	}
	if ds.Len() <= first {
		return nil
	}
	idx := make([]int, 0, ds.Len()-first)
	for i := first; i < ds.Len(); i++ {
		idx = append(idx, i)
	}
	return idx
}

func (n *Network) window() int {
	if n.Window > 0 {
		return n.Window
	}
	return DefaultWindow
}

// assembleBatch gathers the feature rows (flat or windowed) and target
// column for the given anchor rows.
func (n *Network) assembleBatch(ds *Dataset, rows []int) (*mat.Matrix, []*mat.Matrix, *mat.Matrix) {
	b := len(rows)
	y := mat.New(b, 1)
	for i, r := range rows {
		y.Set(i, 0, ds.Y[r])
	}
	if n.rec == nil {
		flat := mat.New(b, n.InSize)
		for i, r := range rows {
			flat.SetRow(i, ds.X.Row(r))
		}
		return flat, nil, y
	}
	w := n.window()
	seq := make([]*mat.Matrix, w)
	for t := 0; t < w; t++ {
		step := mat.New(b, n.InSize)
		for i, r := range rows {
			step.SetRow(i, ds.X.Row(r-w+1+t))
		}
		seq[t] = step
	}
	return nil, seq, y
}

// Predict returns the network outputs for every usable row of ds, aligned
// with the anchor indexes returned as the second value.
func (n *Network) Predict(ds *Dataset) ([]float64, []int) {
	idx := n.sampleIndexes(ds)
	if len(idx) == 0 {
		return nil, nil
	}
	const chunk = 256
	out := make([]float64, 0, len(idx))
	for start := 0; start < len(idx); start += chunk {
		end := start + chunk
		if end > len(idx) {
			end = len(idx)
		}
		flat, seq, _ := n.assembleBatch(ds, idx[start:end])
		pred := n.Forward(flat, seq)
		for r := 0; r < pred.Rows; r++ {
			out = append(out, pred.At(r, 0))
		}
	}
	return out, idx
}

// PredictOne returns the scalar prediction for a single feature vector
// (dense models) or window of vectors (recurrent models, len == Window).
func (n *Network) PredictOne(features [][]float64) float64 {
	if n.rec == nil {
		if len(features) != 1 {
			panic(fmt.Sprintf("nn: dense model expects 1 feature row, got %d", len(features)))
		}
		x := mat.FromRows(features)
		return n.Forward(x, nil).At(0, 0)
	}
	if len(features) != n.window() {
		panic(fmt.Sprintf("nn: recurrent model expects %d feature rows, got %d", n.window(), len(features)))
	}
	seq := make([]*mat.Matrix, len(features))
	for t, row := range features {
		seq[t] = mat.FromRows([][]float64{row})
	}
	return n.Forward(nil, seq).At(0, 0)
}

// MSELoss returns the mean-squared-error loss between pred and target
// (both B×1) and the gradient dLoss/dPred.
func MSELoss(pred, target *mat.Matrix) (float64, *mat.Matrix) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic(fmt.Sprintf("nn: MSELoss shape mismatch %dx%d vs %dx%d",
			pred.Rows, pred.Cols, target.Rows, target.Cols))
	}
	nElem := float64(len(pred.Data))
	grad := mat.New(pred.Rows, pred.Cols)
	var loss float64
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / nElem
	}
	return loss / nElem, grad
}
