// Package scenario is the workload plane's catalogue: named, seedable
// workloads that drive the simulated cluster through access patterns the
// paper's single BELLE II suite never exercises — zipfian hot sets,
// migrating hotspots, write-heavy ingest, diurnal tenant alternation,
// cold sequential scans, and heterogeneous file populations.
//
// Every scenario satisfies Workload, the full contract the facade, the
// experiments harness, and the checkpoint plane program against; the
// engine loop (internal/core) consumes the narrower core.Workload subset
// of the same methods. The original BELLE II runner
// (internal/workload.Runner) is the "belle" scenario and reproduces its
// pre-plane access sequences bit-for-bit.
package scenario

import (
	"context"
	"fmt"
	"sort"

	"geomancy/internal/storagesim"
	"geomancy/internal/trace"
	"geomancy/internal/workload"
)

// Workload is a named, checkpointable workload driving a cluster. It
// extends the engine loop's view (Files/ApplyLayout/RunOnceContext) with
// placement, identity, and serialization: everything the facade and the
// experiments harness need to run, compare, and resume a scenario.
type Workload interface {
	// Name identifies the scenario in registries, checkpoints, and
	// policy-matrix tables.
	Name() string
	// Files returns the working set the engine lays out.
	Files() []trace.BelleFile
	// SpreadEvenly places the working set round-robin across devices —
	// the paper's basic spread policy, every experiment's starting
	// layout.
	SpreadEvenly(devices []string) error
	// ApplyLayout re-homes files per the layout, returning the moves
	// performed. Files absent from the layout stay put.
	ApplyLayout(layout map[int64]string) ([]storagesim.MoveResult, error)
	// RunOnce executes one workload run.
	RunOnce(obs workload.Observer) (workload.RunStats, error)
	// RunOnceContext is RunOnce with cancellation.
	RunOnceContext(ctx context.Context, obs workload.Observer) (workload.RunStats, error)
	// Runs returns the number of completed runs.
	Runs() int
	// MarshalState serializes everything that influences future runs —
	// the RNG stream, run counter, and generator registers — for the
	// checkpoint plane.
	MarshalState() ([]byte, error)
	// UnmarshalState restores MarshalState output; the workload must
	// have been constructed with the same configuration and seed.
	UnmarshalState(data []byte) error
}

// Info describes one registered scenario for listings (-list-scenarios).
type Info struct {
	Name        string
	Description string
}

// builder constructs a scenario over an existing cluster. files may be
// nil, in which case the scenario supplies its default population.
type builder struct {
	desc  string
	build func(cluster *storagesim.Cluster, files []trace.BelleFile, seed int64) (Workload, error)
}

// New builds the named scenario against cluster, seeded with seed. A nil
// files slice selects the scenario's default population (the BELLE II
// 24-file set for most; mixed-sizes generates its own). The returned
// workload has not been placed: call SpreadEvenly before running.
func New(name string, cluster *storagesim.Cluster, files []trace.BelleFile, seed int64) (Workload, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	return b.build(cluster, files, seed)
}

// Names returns every registered scenario name, sorted.
func Names() []string {
	names := make([]string, 0, len(builders))
	for name := range builders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// List returns every registered scenario with its description, sorted by
// name.
func List() []Info {
	infos := make([]Info, 0, len(builders))
	for _, name := range Names() {
		infos = append(infos, Info{Name: name, Description: builders[name].desc})
	}
	return infos
}
