package scenario

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"

	"geomancy/internal/generator"
	"geomancy/internal/rng"
	"geomancy/internal/storagesim"
	"geomancy/internal/telemetry"
	"geomancy/internal/trace"
	"geomancy/internal/workload"
)

// Phase overrides the operation mix from a given run onward; the last
// phase whose StartRun is ≤ the current run counter is active. Scenarios
// use phases to switch regimes mid-experiment (ingest burst, then
// read-mostly analysis) without a second workload object.
type Phase struct {
	// StartRun is the first run (0-based) the phase applies to.
	StartRun int
	// ReadFraction replaces CoreConfig.ReadFraction while active.
	ReadFraction float64
}

// CoreConfig parameterizes the Core workload: operation count and mix,
// the key-chooser distribution, access-size bounds, and the optional
// regime modifiers (hot-set rotation, tenant alternation, ingest mode,
// phase schedule). The zero value is not runnable; NewCore validates and
// fills defaults.
type CoreConfig struct {
	// Name is the scenario name reported by Workload.Name.
	Name string
	// OpsPerRun is the number of accesses per run (default 360,
	// matching the BELLE II suite's expected per-run access count).
	OpsPerRun int
	// ReadFraction is the probability an operation reads (the rest
	// write). Default 0.95.
	ReadFraction float64
	// FracLo and FracHi bound the uniformly drawn fraction of the file
	// touched per access. Defaults 0.3 and 1.0.
	FracLo, FracHi float64
	// Chooser draws file indices (reduced mod the population size). It
	// is the scenario's distribution: zipfian, hotspot, counter, …
	Chooser generator.Generator
	// ShiftEvery, when positive, rotates the index space every
	// ShiftEvery runs by ShiftFrac of the population — the hot set
	// migrates across the file set as a pure function of the run
	// counter.
	ShiftEvery int
	// ShiftFrac is the fraction of the population each rotation hops.
	ShiftFrac float64
	// TenantPeriod, when positive, splits the population into two
	// tenant halves and alternates which half receives TenantShare of
	// the operations every TenantPeriod runs — a diurnal pattern.
	TenantPeriod int
	// TenantShare is the active tenant's share of operations (default
	// 0.9).
	TenantShare float64
	// Ingest, when true, makes writes append at a moving head (a
	// counter over the index space) while reads trail it by the
	// Chooser's draw — YCSB's "latest" pattern over files.
	Ingest bool
	// Phases optionally re-parameterizes the mix over time; entries
	// must be sorted by StartRun.
	Phases []Phase
}

// Core is the configurable scenario workload: each run performs
// OpsPerRun accesses whose targets come from a serializable generator
// chain over one checkpointable RNG stream. Every regime modifier is a
// pure function of (config, run counter, stream), so a Core restored
// from MarshalState continues bit-identically.
type Core struct {
	cfg     CoreConfig          //geomancy:ephemeral construction config, re-supplied by NewCore on restore
	files   []trace.BelleFile   //geomancy:ephemeral construction arg, re-supplied by NewCore on restore
	cluster *storagesim.Cluster //geomancy:ephemeral serialized separately as the checkpoint's ClusterState
	rng     *rng.RNG
	runs    int
	chooser generator.Generator
	// head is the ingest write head (Ingest mode only).
	head *generator.Counter
}

// NewCore builds a Core workload over cluster and files.
func NewCore(cfg CoreConfig, cluster *storagesim.Cluster, files []trace.BelleFile, seed int64) (*Core, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("scenario: core workload needs a name")
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("scenario %s: empty file population", cfg.Name)
	}
	if cfg.Chooser == nil {
		return nil, fmt.Errorf("scenario %s: nil chooser generator", cfg.Name)
	}
	if cfg.OpsPerRun <= 0 {
		cfg.OpsPerRun = 360
	}
	if cfg.ReadFraction <= 0 || cfg.ReadFraction > 1 {
		cfg.ReadFraction = 0.95
	}
	if cfg.FracLo <= 0 {
		cfg.FracLo = 0.3
	}
	if cfg.FracHi <= 0 || cfg.FracHi > 1 {
		cfg.FracHi = 1.0
	}
	if cfg.FracHi < cfg.FracLo {
		cfg.FracHi = cfg.FracLo
	}
	if cfg.TenantShare <= 0 || cfg.TenantShare > 1 {
		cfg.TenantShare = 0.9
	}
	for i := 1; i < len(cfg.Phases); i++ {
		if cfg.Phases[i].StartRun <= cfg.Phases[i-1].StartRun {
			return nil, fmt.Errorf("scenario %s: phases not sorted by StartRun", cfg.Name)
		}
	}
	c := &Core{
		cfg:     cfg,
		files:   files,
		cluster: cluster,
		rng:     rng.New(seed),
		chooser: cfg.Chooser,
	}
	if cfg.Ingest {
		c.head = generator.NewCounter(0)
	}
	return c, nil
}

// Name implements Workload.
func (c *Core) Name() string { return c.cfg.Name }

// Files implements Workload.
func (c *Core) Files() []trace.BelleFile { return c.files }

// Runs implements Workload.
func (c *Core) Runs() int { return c.runs }

// Cluster exposes the underlying cluster for instrumentation.
func (c *Core) Cluster() *storagesim.Cluster { return c.cluster }

// SpreadEvenly implements Workload: round-robin initial placement.
func (c *Core) SpreadEvenly(devices []string) error {
	if len(devices) == 0 {
		return fmt.Errorf("scenario %s: no devices to spread across", c.cfg.Name)
	}
	for i, f := range c.files {
		dev := devices[i%len(devices)]
		if err := c.cluster.PlaceFile(f.ID, f.Path, f.Size, dev); err != nil {
			return fmt.Errorf("scenario %s: placing %s on %s: %w", c.cfg.Name, f.Path, dev, err)
		}
	}
	return nil
}

// ApplyLayout implements Workload: re-homes files per the layout, the
// same skip-invalid-destination semantics as the BELLE II runner.
func (c *Core) ApplyLayout(layout map[int64]string) ([]storagesim.MoveResult, error) {
	var moves []storagesim.MoveResult
	for _, f := range c.files {
		dst, ok := layout[f.ID]
		if !ok {
			continue
		}
		cur, err := c.cluster.File(f.ID)
		if err != nil {
			return moves, err
		}
		if cur.Device == dst {
			continue
		}
		mv, err := c.cluster.Move(f.ID, dst)
		if err != nil {
			continue
		}
		moves = append(moves, mv)
	}
	return moves, nil
}

// readFraction returns the mix in effect for the current run: the last
// phase whose StartRun has been reached, or the base config.
func (c *Core) readFraction() float64 {
	rf := c.cfg.ReadFraction
	for _, p := range c.cfg.Phases {
		if c.runs >= p.StartRun {
			rf = p.ReadFraction
		}
	}
	return rf
}

// pickIndex draws the target file index for one operation. Draw order
// within an operation is fixed (write decision, then index, then
// fraction); every modifier below is deterministic in (runs, stream).
func (c *Core) pickIndex(write bool) int {
	n := int64(len(c.files))
	if c.cfg.Ingest {
		if write {
			// Writes append at the moving head (wrapping over the
			// population: files are overwritten oldest-first).
			return int(c.head.Next(c.rng) % n)
		}
		// Reads trail the head by the chooser's draw — the "latest"
		// pattern: recently written files are the hottest.
		lag := c.chooser.Next(c.rng) % n
		idx := (c.head.Last() - lag) % n
		if idx < 0 {
			idx += n
		}
		return int(idx)
	}
	if c.cfg.TenantPeriod > 0 {
		half := n / 2
		if half < 1 {
			half = 1
		}
		active := int64((c.runs / c.cfg.TenantPeriod) % 2)
		tenant := active
		if c.rng.Float64() >= c.cfg.TenantShare {
			tenant = 1 - active
		}
		idx := c.chooser.Next(c.rng) % half
		return int((tenant*half + idx) % n)
	}
	idx := c.chooser.Next(c.rng) % n
	if c.cfg.ShiftEvery > 0 {
		hop := int64(c.cfg.ShiftFrac * float64(n))
		if hop < 1 {
			hop = 1
		}
		offset := int64(c.runs/c.cfg.ShiftEvery) * hop
		idx = (idx + offset) % n
	}
	return int(idx)
}

// RunOnce implements Workload.
func (c *Core) RunOnce(obs workload.Observer) (workload.RunStats, error) {
	return c.RunOnceContext(context.Background(), obs)
}

// RunOnceContext implements Workload: OpsPerRun accesses drawn from the
// generator chain, with the same stats assembly as the BELLE II runner.
// A cancelled run returns partial statistics with ctx.Err() and does not
// count as completed.
func (c *Core) RunOnceContext(ctx context.Context, obs workload.Observer) (workload.RunStats, error) {
	start := c.cluster.Now()
	stats := workload.RunStats{Run: c.runs}
	lat := telemetry.NewHistogram(telemetry.DefLatencyBuckets)
	rf := c.readFraction()
	var tpSum float64
	for op := 0; op < c.cfg.OpsPerRun; op++ {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		write := c.rng.Float64() >= rf
		f := c.files[c.pickIndex(write)]
		frac := c.cfg.FracLo + (c.cfg.FracHi-c.cfg.FracLo)*c.rng.Float64()
		bytes := int64(float64(f.Size) * frac)
		if bytes <= 0 {
			bytes = 1
		}
		var rb, wb int64
		if write {
			wb = bytes
		} else {
			rb = bytes
		}
		res, err := c.cluster.Access(f.ID, rb, wb)
		if err != nil {
			return stats, fmt.Errorf("scenario %s run %d: %w", c.cfg.Name, c.runs, err)
		}
		stats.Accesses++
		stats.Bytes += rb + wb
		tpSum += res.Throughput
		lat.Observe(res.End - res.Start)
		if obs != nil {
			obs(res, 1, c.runs)
		}
	}
	if stats.Accesses > 0 {
		stats.MeanThroughput = tpSum / float64(stats.Accesses)
		stats.LatencyP50 = lat.Quantile(0.50)
		stats.LatencyP95 = lat.Quantile(0.95)
		stats.LatencyP99 = lat.Quantile(0.99)
	}
	stats.Duration = c.cluster.Now() - start
	c.runs++
	return stats, nil
}

// coreState is the gob-serialized snapshot of a Core workload: the RNG
// register, run counter, and every generator's registers. Configuration
// and population are reconstructed from the scenario name on restore.
type coreState struct {
	RNG     uint64
	Runs    int
	Chooser generator.State
	Head    generator.State
	HasHead bool
}

// MarshalState implements Workload.
func (c *Core) MarshalState() ([]byte, error) {
	st := coreState{
		RNG:     c.rng.State(),
		Runs:    c.runs,
		Chooser: c.chooser.State(),
	}
	if c.head != nil {
		st.Head = c.head.State()
		st.HasHead = true
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("scenario %s: marshaling state: %w", c.cfg.Name, err)
	}
	return buf.Bytes(), nil
}

// UnmarshalState implements Workload.
func (c *Core) UnmarshalState(data []byte) error {
	var st coreState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("scenario %s: unmarshaling state: %w", c.cfg.Name, err)
	}
	if err := c.chooser.RestoreState(st.Chooser); err != nil {
		return fmt.Errorf("scenario %s: restoring chooser: %w", c.cfg.Name, err)
	}
	if st.HasHead {
		if c.head == nil {
			return fmt.Errorf("scenario %s: snapshot has an ingest head but the scenario does not", c.cfg.Name)
		}
		if err := c.head.RestoreState(st.Head); err != nil {
			return fmt.Errorf("scenario %s: restoring ingest head: %w", c.cfg.Name, err)
		}
	} else if c.head != nil {
		return fmt.Errorf("scenario %s: snapshot lacks the ingest head", c.cfg.Name)
	}
	c.rng.SetState(st.RNG)
	c.runs = st.Runs
	return nil
}
