package scenario

import (
	"fmt"
	"math"

	"geomancy/internal/core"
	"geomancy/internal/generator"
	"geomancy/internal/rng"
	"geomancy/internal/storagesim"
	"geomancy/internal/trace"
	"geomancy/internal/workload"
)

// The BELLE II runner and the Core workload both satisfy the scenario
// contract, and every scenario Workload satisfies the engine loop's
// narrower view.
var (
	_ Workload      = (*workload.Runner)(nil)
	_ Workload      = (*Core)(nil)
	_ core.Workload = (Workload)(nil)
)

// defaultFiles resolves a scenario's population: the caller's files if
// given, the paper's 24-file BELLE II set otherwise.
func defaultFiles(files []trace.BelleFile, seed int64) []trace.BelleFile {
	if files != nil {
		return files
	}
	return trace.BelleFileSet(seed)
}

// mixedSizeBuckets is the mixed-sizes scenario's population histogram:
// many small files, a mid band, and a heavy tail of huge ones.
func mixedSizeBuckets() []generator.SizeBucket {
	return []generator.SizeBucket{
		{Lo: 64 << 10, Hi: 4 << 20, Weight: 0.6},
		{Lo: 4 << 20, Hi: 256 << 20, Weight: 0.3},
		{Lo: 256 << 20, Hi: 2 << 30, Weight: 0.1},
	}
}

// MixedSizeFileCount is the mixed-sizes scenario's population size.
const MixedSizeFileCount = 48

// mixedSizeFiles generates the mixed-sizes population from the size
// histogram, deterministically from seed. The drawing stream is
// construction-time only and never needs checkpointing.
func mixedSizeFiles(seed int64) ([]trace.BelleFile, error) {
	h, err := generator.NewSizeHistogram(mixedSizeBuckets())
	if err != nil {
		return nil, err
	}
	r := rng.New(seed)
	files := make([]trace.BelleFile, MixedSizeFileCount)
	for i := range files {
		files[i] = trace.BelleFile{
			ID:   int64(i + 1),
			Path: fmt.Sprintf("/mixed/set%02d/file%02d.dat", i/8, i),
			Size: h.Next(r),
		}
	}
	return files, nil
}

// builders is the scenario registry. Every entry must be deterministic:
// equal (cluster seed, files, seed) inputs yield workloads with equal
// access sequences.
var builders = map[string]builder{
	"belle": {
		desc: "the paper's BELLE II Monte-Carlo suite: 24 ROOT files, " +
			"each read 10-20 times in succession per run (§IV)",
		build: func(cluster *storagesim.Cluster, files []trace.BelleFile, seed int64) (Workload, error) {
			return workload.NewRunner(cluster, defaultFiles(files, seed), 1, seed), nil
		},
	},
	"zipfian-hot": {
		desc: "zipfian (θ=0.99) key popularity over the working set: a " +
			"stable hot head, a long cold tail, 95% reads",
		build: func(cluster *storagesim.Cluster, files []trace.BelleFile, seed int64) (Workload, error) {
			files = defaultFiles(files, seed)
			return NewCore(CoreConfig{
				Name:         "zipfian-hot",
				ReadFraction: 0.95,
				Chooser:      generator.NewZipfian(int64(len(files)), generator.ZipfianTheta),
			}, cluster, files, seed)
		},
	},
	"hotspot-shift": {
		desc: "20% of files receive 80% of accesses, and the hot segment " +
			"migrates a quarter of the keyspace every 10 runs",
		build: func(cluster *storagesim.Cluster, files []trace.BelleFile, seed int64) (Workload, error) {
			files = defaultFiles(files, seed)
			return NewCore(CoreConfig{
				Name:         "hotspot-shift",
				ReadFraction: 0.9,
				Chooser:      generator.NewHotspot(0, int64(len(files))-1, 0.2, 0.8),
				ShiftEvery:   10,
				ShiftFrac:    0.25,
			}, cluster, files, seed)
		},
	},
	"write-ingest": {
		desc: "write-heavy ingest at a moving head with latest-skewed " +
			"reads trailing it; a read-mostly analysis phase follows",
		build: func(cluster *storagesim.Cluster, files []trace.BelleFile, seed int64) (Workload, error) {
			files = defaultFiles(files, seed)
			return NewCore(CoreConfig{
				Name:         "write-ingest",
				ReadFraction: 0.3,
				Chooser:      generator.NewZipfian(int64(len(files)), generator.ZipfianTheta),
				Ingest:       true,
				Phases: []Phase{
					{StartRun: 30, ReadFraction: 0.9},
				},
			}, cluster, files, seed)
		},
	},
	"diurnal-tenants": {
		desc: "two tenant halves alternate dominance every 8 runs (90% " +
			"share), zipfian within the active tenant",
		build: func(cluster *storagesim.Cluster, files []trace.BelleFile, seed int64) (Workload, error) {
			files = defaultFiles(files, seed)
			half := int64(len(files)) / 2
			if half < 1 {
				half = 1
			}
			return NewCore(CoreConfig{
				Name:         "diurnal-tenants",
				ReadFraction: 0.9,
				Chooser:      generator.NewZipfian(half, generator.ZipfianTheta),
				TenantPeriod: 8,
				TenantShare:  0.9,
			}, cluster, files, seed)
		},
	},
	"cold-scan": {
		desc: "sequential full-file sweeps over the whole population " +
			"(99.5% reads, whole-file accesses): no hot set to exploit",
		build: func(cluster *storagesim.Cluster, files []trace.BelleFile, seed int64) (Workload, error) {
			files = defaultFiles(files, seed)
			return NewCore(CoreConfig{
				Name:         "cold-scan",
				ReadFraction: 0.995,
				FracLo:       1.0,
				FracHi:       1.0,
				Chooser:      generator.NewCounter(0),
			}, cluster, files, seed)
		},
	},
	"mixed-sizes": {
		desc: "48 files drawn from a small/mid/huge size histogram with " +
			"zipfian popularity: placement must weigh size against heat",
		build: func(cluster *storagesim.Cluster, files []trace.BelleFile, seed int64) (Workload, error) {
			if files == nil {
				var err error
				files, err = mixedSizeFiles(seed)
				if err != nil {
					return nil, err
				}
			}
			return NewCore(CoreConfig{
				Name:         "mixed-sizes",
				ReadFraction: 0.9,
				Chooser:      generator.NewZipfian(int64(len(files)), generator.ZipfianTheta),
			}, cluster, files, seed)
		},
	},
}

// HotShare reports the fraction of accesses falling on the hottest k of
// n ranks under the zipfian head — a helper for distribution-level
// assertions in tests and docs (ζ(k)/ζ(n) at θ).
func HotShare(k, n int64, theta float64) float64 {
	if k > n {
		k = n
	}
	var num, den float64
	for i := int64(0); i < n; i++ {
		t := 1 / math.Pow(float64(i+1), theta)
		den += t
		if i < k {
			num += t
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
