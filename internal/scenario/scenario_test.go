package scenario

import (
	"reflect"
	"testing"

	"geomancy/internal/storagesim"
	"geomancy/internal/trace"
	"geomancy/internal/workload"
)

func newCluster(t *testing.T, seed int64) *storagesim.Cluster {
	t.Helper()
	c, err := storagesim.NewCluster(storagesim.BlueskyProfiles(), storagesim.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// buildSpread constructs a placed scenario ready to run.
func buildSpread(t *testing.T, name string, seed int64) Workload {
	t.Helper()
	cluster := newCluster(t, seed)
	w, err := New(name, cluster, nil, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SpreadEvenly(cluster.DeviceNames()); err != nil {
		t.Fatal(err)
	}
	return w
}

// access is the cluster-independent identity of one access.
type access struct {
	FileID int64
	Read   int64
	Write  int64
}

// trace runs w for runs runs and returns the full access sequence.
func traceRuns(t *testing.T, w Workload, runs int) []access {
	t.Helper()
	var seq []access
	for i := 0; i < runs; i++ {
		_, err := w.RunOnce(func(res storagesim.AccessResult, wl, run int) {
			seq = append(seq, access{FileID: res.FileID, Read: res.BytesRead, Write: res.BytesWritten})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return seq
}

// The registry must expose the whole catalogue, sorted, with belle and
// the six synthetic scenarios present.
func TestRegistryCatalogue(t *testing.T) {
	names := Names()
	want := []string{"belle", "cold-scan", "diurnal-tenants", "hotspot-shift",
		"mixed-sizes", "write-ingest", "zipfian-hot"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for _, info := range List() {
		if info.Description == "" {
			t.Errorf("scenario %s has no description", info.Name)
		}
	}
	if _, err := New("no-such-scenario", newCluster(t, 1), nil, 1); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// Every scenario must be deterministic: equal seeds yield identical
// access sequences on independently built stacks.
func TestSameSeedSameSequence(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			a := traceRuns(t, buildSpread(t, name, 42), 3)
			b := traceRuns(t, buildSpread(t, name, 42), 3)
			if len(a) == 0 {
				t.Fatal("no accesses recorded")
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same-seed access sequences diverged")
			}
		})
	}
}

// The belle scenario must reproduce the pre-plane Runner's access
// sequence bit-for-bit: same constructor arguments, same draws.
func TestBelleMatchesRunner(t *testing.T) {
	viaScenario := traceRuns(t, buildSpread(t, "belle", 7), 3)

	cluster := newCluster(t, 7)
	r := workload.NewRunner(cluster, trace.BelleFileSet(7), 1, 7)
	if err := r.SpreadEvenly(cluster.DeviceNames()); err != nil {
		t.Fatal(err)
	}
	direct := traceRuns(t, r, 3)

	if !reflect.DeepEqual(viaScenario, direct) {
		t.Fatal("belle scenario diverged from the direct Runner")
	}
}

// A MarshalState/UnmarshalState round trip taken mid-experiment must
// continue the access sequence exactly, for every scenario.
func TestMarshalRoundTripMidRun(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			w := buildSpread(t, name, 11)
			traceRuns(t, w, 2)
			blob, err := w.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			want := traceRuns(t, w, 2)

			restored := buildSpread(t, name, 11)
			if err := restored.UnmarshalState(blob); err != nil {
				t.Fatal(err)
			}
			if restored.Runs() != 2 {
				t.Fatalf("restored run counter = %d, want 2", restored.Runs())
			}
			if got := traceRuns(t, restored, 2); !reflect.DeepEqual(got, want) {
				t.Fatal("restored access sequence diverged")
			}
		})
	}
}

// hotspot-shift's hot set must actually migrate: the most-accessed file
// of the first shift window differs from the window after the shift.
func TestHotspotShiftMigrates(t *testing.T) {
	w := buildSpread(t, "hotspot-shift", 3)
	hottest := func(seq []access) int64 {
		counts := map[int64]int{}
		for _, a := range seq {
			counts[a.FileID]++
		}
		var best int64
		for id, n := range counts {
			if n > counts[best] {
				best = id
			}
		}
		return best
	}
	before := hottest(traceRuns(t, w, 10))
	after := hottest(traceRuns(t, w, 10))
	if before == after {
		t.Fatalf("hot set did not migrate: file %d hottest in both windows", before)
	}
}

// write-ingest must be write-heavy in its ingest phase and read-mostly
// after its phase boundary at run 30.
func TestWriteIngestPhases(t *testing.T) {
	w := buildSpread(t, "write-ingest", 5)
	writeFrac := func(seq []access) float64 {
		writes := 0
		for _, a := range seq {
			if a.Write > 0 {
				writes++
			}
		}
		return float64(writes) / float64(len(seq))
	}
	ingest := writeFrac(traceRuns(t, w, 5))
	if ingest < 0.6 {
		t.Errorf("ingest-phase write fraction = %.2f, want ≥ 0.6", ingest)
	}
	traceRuns(t, w, 25) // advance to the analysis phase
	analysis := writeFrac(traceRuns(t, w, 5))
	if analysis > 0.2 {
		t.Errorf("analysis-phase write fraction = %.2f, want ≤ 0.2", analysis)
	}
}

// cold-scan must sweep the whole population: a single run touches every
// file, in order.
func TestColdScanCoversPopulation(t *testing.T) {
	w := buildSpread(t, "cold-scan", 9)
	seq := traceRuns(t, w, 1)
	seen := map[int64]bool{}
	for _, a := range seq {
		seen[a.FileID] = true
	}
	if n := len(w.Files()); len(seen) != n {
		t.Fatalf("one scan run touched %d of %d files", len(seen), n)
	}
}

// diurnal-tenants must alternate dominance between the two file halves.
func TestDiurnalTenantsAlternate(t *testing.T) {
	w := buildSpread(t, "diurnal-tenants", 13)
	half := int64(len(w.Files())) / 2
	firstHalfShare := func(seq []access) float64 {
		first := 0
		for _, a := range seq {
			if a.FileID <= half { // IDs are 1-based
				first++
			}
		}
		return float64(first) / float64(len(seq))
	}
	early := firstHalfShare(traceRuns(t, w, 8))
	late := firstHalfShare(traceRuns(t, w, 8))
	if early < 0.7 {
		t.Errorf("tenant 0 share in its window = %.2f, want ≥ 0.7", early)
	}
	if late > 0.3 {
		t.Errorf("tenant 0 share off-window = %.2f, want ≤ 0.3", late)
	}
}

// mixed-sizes must generate its own heterogeneous population, every size
// inside the histogram's bounds.
func TestMixedSizesPopulation(t *testing.T) {
	w := buildSpread(t, "mixed-sizes", 17)
	files := w.Files()
	if len(files) != MixedSizeFileCount {
		t.Fatalf("population = %d files, want %d", len(files), MixedSizeFileCount)
	}
	buckets := mixedSizeBuckets()
	lo, hi := buckets[0].Lo, buckets[len(buckets)-1].Hi
	small := 0
	for _, f := range files {
		if f.Size < lo || f.Size > hi {
			t.Fatalf("file %s size %d outside histogram bounds", f.Path, f.Size)
		}
		if f.Size <= buckets[0].Hi {
			small++
		}
	}
	if small == 0 || small == len(files) {
		t.Errorf("population not heterogeneous: %d/%d small files", small, len(files))
	}
}

// A state blob from a structurally different scenario must be rejected,
// not silently absorbed.
func TestUnmarshalRejectsMismatchedShape(t *testing.T) {
	ingest := buildSpread(t, "write-ingest", 1)
	plain := buildSpread(t, "zipfian-hot", 1)
	blob, err := ingest.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.UnmarshalState(blob); err == nil {
		t.Error("zipfian-hot absorbed a write-ingest snapshot")
	}
}
