package geomancy_test

import (
	"fmt"
	"log"

	"geomancy"
)

// Example wires a complete Geomancy deployment over the simulated Bluesky
// system and runs the closed loop for a few workload runs.
func Example() {
	sys, err := geomancy.New(
		geomancy.WithSeed(1),
		geomancy.WithEpochs(4), // paper uses 200; tiny for the example
		geomancy.WithTrainingWindow(200),
		geomancy.WithCooldown(2),
		geomancy.WithBootstrapRuns(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	if _, err := sys.RunN(3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d devices, %d files, %d layout decisions\n",
		len(sys.Devices()), len(sys.Layout()), len(sys.Movements()))
	// Output: 6 devices, 24 files, 1 layout decisions
}

// ExampleNew_customCluster shows Geomancy driving a non-Bluesky target
// system: any set of device profiles works.
func ExampleNew_customCluster() {
	tiers := []geomancy.DeviceProfile{
		{Name: "fast", ReadBW: 10e9, WriteBW: 8e9, LatencyFloor: 0.001, Capacity: 1e12},
		{Name: "slow", ReadBW: 0.5e9, WriteBW: 0.4e9, LatencyFloor: 0.05, Capacity: 1e13},
	}
	files := []geomancy.File{
		{ID: 1, Path: "/data/a.h5", Size: 1 << 28},
		{ID: 2, Path: "/data/b.h5", Size: 1 << 29},
	}
	sys, err := geomancy.New(
		geomancy.WithSeed(2),
		geomancy.WithDevices(tiers),
		geomancy.WithFiles(files),
		geomancy.WithEpochs(4),
		geomancy.WithTrainingWindow(200),
		geomancy.WithCooldown(2),
		geomancy.WithBootstrapRuns(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.RunN(3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d devices, %d files\n", len(sys.Devices()), len(sys.Layout()))
	// Output: 2 devices, 2 files
}
