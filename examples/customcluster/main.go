// Custom target system: Geomancy is not tied to the Bluesky profile. This
// example builds a three-tier cluster (NVMe burst buffer, disk pool, tape-
// like archive — the topology of the Univistor/Stacker systems the paper's
// related work discusses) with a custom working set, and lets Geomancy
// discover the tiering on its own: no tier hints, just telemetry.
//
//	go run ./examples/customcluster
package main

import (
	"fmt"
	"log"

	"geomancy"
	"geomancy/internal/storagesim"
)

func main() {
	const GB = 1e9
	tiers := []geomancy.DeviceProfile{
		{
			Name: "burst-nvme", ReadBW: 20 * GB, WriteBW: 16 * GB,
			LatencyFloor: 0.0005, Noise: 0.2, Capacity: 100e9,
			External: storagesim.ExternalLoad{Base: 0.05, WaveAmp: 0.1, WavePeriod: 1200},
		},
		{
			Name: "disk-pool", ReadBW: 3 * GB, WriteBW: 2.5 * GB,
			LatencyFloor: 0.01, Noise: 0.4, Capacity: 2000e9,
			External: storagesim.ExternalLoad{Base: 0.25, WaveAmp: 0.3, WavePeriod: 3000, BurstRate: 2, BurstLoad: 0.4, BurstMean: 120},
		},
		{
			Name: "archive", ReadBW: 0.3 * GB, WriteBW: 0.25 * GB,
			LatencyFloor: 0.5, Noise: 0.15, Capacity: 50000e9,
			External: storagesim.ExternalLoad{Base: 0.02},
		},
	}

	// A working set of 12 analysis files, 100 MB to 4 GB.
	var files []geomancy.File
	for i := 0; i < 12; i++ {
		files = append(files, geomancy.File{
			ID:   int64(i + 1),
			Path: fmt.Sprintf("/analysis/run%02d.h5", i),
			Size: int64(100e6) * int64(1+i*3),
		})
	}

	sys, err := geomancy.New(
		geomancy.WithSeed(17),
		geomancy.WithDevices(tiers),
		geomancy.WithFiles(files),
		geomancy.WithEpochs(40),
		geomancy.WithTrainingWindow(800),
		geomancy.WithCooldown(3),
		geomancy.WithBootstrapRuns(3),
		geomancy.WithGapScheduling(), // move only inside predicted idle windows
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	for i := 0; i < 15; i++ {
		stats, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		if i%3 == 0 {
			fmt.Printf("run %2d: mean %.2f GB/s\n", i, stats.MeanThroughput/1e9)
		}
	}

	fmt.Printf("\noverall mean: %.2f GB/s\n", sys.MeanThroughput()/1e9)
	fmt.Println("learned placement:")
	byDevice := map[string][]int64{}
	for id, dev := range sys.Layout() {
		byDevice[dev] = append(byDevice[dev], id)
	}
	for _, dev := range sys.Devices() {
		fmt.Printf("  %-10s %d files\n", dev, len(byDevice[dev]))
	}
	fmt.Println("\nGeomancy received no tier hints — the placement above was " +
		"learned from throughput telemetry alone.")
}
