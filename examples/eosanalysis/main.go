// EOS trace analysis (§V-D): generate a synthetic CERN EOS access log,
// rank every field by its Pearson correlation against throughput, select
// the paper's feature set, and train the deployed model (Table I model 1)
// on the trace to verify the features carry signal.
//
//	go run ./examples/eosanalysis
package main

import (
	"fmt"
	"geomancy/internal/rng"
	"log"
	"math"
	"sort"

	"geomancy/internal/features"
	"geomancy/internal/mat"
	"geomancy/internal/nn"
	"geomancy/internal/trace"
)

func main() {
	// 1. Generate the trace.
	const records = 20000
	gen := trace.NewGenerator(trace.GeneratorConfig{Seed: 3, Records: records})
	recs := gen.Generate(records)
	fmt.Printf("generated %d EOS access records across %d file systems\n\n", len(recs), 24)

	// 2. Correlate every numeric field with throughput (Fig. 4).
	cols := make([][]float64, len(trace.FieldNames))
	for i := range cols {
		cols[i] = make([]float64, len(recs))
	}
	target := make([]float64, len(recs))
	for j := range recs {
		for i, v := range recs[j].Fields() {
			cols[i][j] = v
		}
		target[j] = recs[j].Throughput()
	}
	report := features.CorrelationReport(trace.FieldNames, cols, target)
	features.SortByAbs(report)
	fmt.Println("fields ranked by |pearson r| against throughput:")
	for i, c := range report {
		if i >= 10 {
			break
		}
		fmt.Printf("  %-8s %+.3f\n", c.Name, c.R)
	}

	// 3. Assemble the paper's six-feature dataset, normalized and
	//    time-ordered, with moving-average smoothing (§V-E).
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].OTS < recs[j].OTS })
	rows := make([][]float64, len(recs))
	targets := make([]float64, len(recs))
	for i := range recs {
		rows[i] = recs[i].ChosenFeatures()
		targets[i] = recs[i].Throughput()
	}
	targets = features.MovingAverage(targets, 8)

	var fscaler features.MinMaxScaler
	x := fscaler.FitTransform(mat.FromRows(rows))
	var tscaler features.ScalarScaler
	tscaler.Fit(targets)
	ds := nn.NewDataset(x, tscaler.TransformAll(targets))
	train, val, test := ds.Split()
	fmt.Printf("\ndataset: %d samples (%d train / %d val / %d test), %d features: %v\n",
		ds.Len(), train.Len(), val.Len(), test.Len(), x.Cols, trace.ChosenFeatureNames)

	// 4. Train model 1 and report the Table II-style metrics.
	rng := rng.NewRand(3)
	net := nn.MustBuildModel(1, x.Cols, rng)
	fmt.Printf("model 1: %s (%d parameters)\n", net, net.ParamCount())
	loss, err := net.Fit(train, nn.FitConfig{
		Epochs: 60, BatchSize: 32, Optimizer: &nn.SGD{LR: 0.05}, Rng: rng,
		Verbose: func(epoch int, l float64) {
			if epoch%20 == 0 {
				fmt.Printf("  epoch %3d: loss %.5f\n", epoch, l)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final training loss: %.5f\n", loss)

	valM := net.Evaluate(val)
	testM := net.Evaluate(test)
	fmt.Printf("validation MARE: %s\n", valM)
	fmt.Printf("test MARE:       %s\n", testM)

	// 5. Demonstrate the MAE-sign adjustment of §V-G on one prediction.
	raw := net.PredictOne([][]float64{test.X.Row(0)})
	adj := nn.AdjustPrediction(raw, valM)
	fmt.Printf("\nsample prediction: raw %.4f, MAE-adjusted %.4f (signed rel err %+.1f%%)\n",
		raw, adj, valM.SignedRelErr)
	fmt.Printf("denormalized: %.2f MB/s -> %.2f MB/s\n",
		tscaler.Inverse(clamp01(raw))/1e6, tscaler.Inverse(clamp01(adj))/1e6)
}

func clamp01(v float64) float64 { return math.Max(0, math.Min(1, v)) }
