// The BELLE II scenario (§IV, §VI experiment 1): compare Geomancy against
// the LFU heuristic — the paper's strongest base case — on the same
// workload and system, and report the throughput gain.
//
//	go run ./examples/belle2
package main

import (
	"fmt"
	"log"

	"geomancy/internal/policy"
	"geomancy/internal/replaydb"
	"geomancy/internal/storagesim"
	"geomancy/internal/trace"
	"geomancy/internal/workload"

	"geomancy"
)

const (
	runs     = 16
	cooldown = 4
	seed     = 7
)

func main() {
	lfuMean, err := runLFU()
	if err != nil {
		log.Fatal(err)
	}
	geoMean, err := runGeomancy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLFU mean:      %.2f GB/s\n", lfuMean/1e9)
	fmt.Printf("Geomancy mean: %.2f GB/s\n", geoMean/1e9)
	fmt.Printf("gain:          %+.1f%%  (paper reports 11–30%% over heuristics)\n",
		(geoMean/lfuMean-1)*100)
}

// runLFU drives the workload with the LFU base case re-deciding the
// layout every cooldown runs, exactly as §VI describes.
func runLFU() (float64, error) {
	cluster := storagesim.NewBluesky(seed)
	files := trace.BelleFileSet(seed)
	runner := workload.NewRunner(cluster, files, 1, seed)
	if err := runner.SpreadEvenly(cluster.DeviceNames()); err != nil {
		return 0, err
	}
	db, err := replaydb.Open(replaydb.Options{})
	if err != nil {
		return 0, err
	}
	defer db.Close()

	lastAccess := map[int64]float64{}
	accessCount := map[int64]int64{}
	var tpSum float64
	var tpN int64
	lfu := policy.LFU{}

	fmt.Println("LFU base case:")
	for r := 0; r < runs; r++ {
		stats, err := runner.RunOnce(func(res storagesim.AccessResult, wl, run int) {
			lastAccess[res.FileID] = res.End
			accessCount[res.FileID]++
			tpSum += res.Throughput
			tpN++
			db.AppendAccess(replaydb.AccessRecord{
				Time: res.Start, FileID: res.FileID, Device: res.Device,
				BytesRead: res.BytesRead, BytesWritten: res.BytesWritten,
				Throughput: res.Throughput,
			})
		})
		if err != nil {
			return 0, err
		}
		fmt.Printf("  run %2d: mean %.2f GB/s\n", r, stats.MeanThroughput/1e9)
		if (r+1)%cooldown != 0 {
			continue
		}
		// Snapshot the state the way the paper's base cases do: device
		// ranking from fresh ReplayDB telemetry.
		var st policy.State
		for _, name := range cluster.DeviceNames() {
			recent := db.RecentByDevice(name, 200)
			var tp float64
			for i := range recent {
				tp += recent[i].Throughput
			}
			if len(recent) > 0 {
				tp /= float64(len(recent))
			}
			st.Devices = append(st.Devices, policy.DeviceInfo{Name: name, Throughput: tp, Free: cluster.Device(name).Free()})
		}
		layout := cluster.Layout()
		for _, f := range files {
			st.Files = append(st.Files, policy.FileInfo{
				ID: f.ID, Size: f.Size, Device: layout[f.ID],
				LastAccess: lastAccess[f.ID], Accesses: accessCount[f.ID],
			})
		}
		if proposal := lfu.Layout(st); proposal != nil {
			if _, err := runner.ApplyLayout(proposal); err != nil {
				return 0, err
			}
		}
	}
	return tpSum / float64(tpN), nil
}

// runGeomancy drives the same workload through the public API.
func runGeomancy() (float64, error) {
	sys, err := geomancy.New(
		geomancy.WithSeed(seed),
		geomancy.WithEpochs(40),
		geomancy.WithTrainingWindow(800),
		geomancy.WithCooldown(cooldown),
		geomancy.WithBootstrapRuns(cooldown),
	)
	if err != nil {
		return 0, err
	}
	defer sys.Close()
	fmt.Println("Geomancy dynamic:")
	for r := 0; r < runs; r++ {
		stats, err := sys.Run()
		if err != nil {
			return 0, err
		}
		fmt.Printf("  run %2d: mean %.2f GB/s\n", r, stats.MeanThroughput/1e9)
	}
	return sys.MeanThroughput(), nil
}
