// Quickstart: wire up Geomancy over the simulated six-mount Bluesky
// system, let the BELLE II workload run, and watch the engine move files
// toward faster, less-contended storage.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"geomancy"
)

func main() {
	sys, err := geomancy.New(
		geomancy.WithSeed(42),
		geomancy.WithEpochs(40), // paper uses 200; 40 keeps this demo snappy
		geomancy.WithTrainingWindow(800),
		geomancy.WithCooldown(5),      // move data every 5 runs (§VI)
		geomancy.WithBootstrapRuns(5), // telemetry warm-up before tuning
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fmt.Println("devices:", sys.Devices())
	fmt.Printf("working set: %d files\n\n", len(sys.Layout()))

	const runs = 20
	for i := 0; i < runs; i++ {
		stats, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %2d: %4d accesses, mean %.2f GB/s\n",
			i, stats.Accesses, stats.MeanThroughput/1e9)
	}

	fmt.Printf("\noverall mean throughput: %.2f GB/s over %d telemetry records\n",
		sys.MeanThroughput()/1e9, sys.Telemetry())
	fmt.Printf("layout decisions: %d\n", len(sys.Movements()))
	for _, mv := range sys.Movements() {
		fmt.Printf("  after access %5d: moved %2d files (%d random exploration)\n",
			mv.AccessIndex, mv.Moved, mv.Random)
	}

	fmt.Println("\nfinal layout (file -> device):")
	byDevice := map[string]int{}
	for _, dev := range sys.Layout() {
		byDevice[dev]++
	}
	for _, dev := range sys.Devices() {
		fmt.Printf("  %-8s %d files\n", dev, byDevice[dev])
	}
}
