// Adaptation under interference (§VI experiment 3, Fig. 6): a duplicate
// workload appears mid-run on the same mounts, the tuned workload's
// throughput dips, and Geomancy reshuffles the layout to recover.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"geomancy/internal/experiments"
)

func main() {
	opts := experiments.Quick(9)
	opts.Runs = 12
	opts.Epochs = 20
	opts.SeriesWindow = 300

	res, err := experiments.Fig6(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.Summary())
	fmt.Println()
	fmt.Printf("tuned workload  (interference starts at access %d):\n", res.InterferenceStart)
	for _, p := range res.Tuned.Points {
		marker := ""
		if p.AccessIndex >= res.InterferenceStart &&
			p.AccessIndex-int64(opts.SeriesWindow) < res.InterferenceStart {
			marker = "   <- second workload starts"
		}
		fmt.Printf("  access %6d: %6.2f GB/s%s\n", p.AccessIndex, p.Throughput/1e9, marker)
	}
	fmt.Println("\nuntuned duplicate workload:")
	for _, p := range res.Untuned.Points {
		fmt.Printf("  access %6d: %6.2f GB/s\n", p.AccessIndex, p.Throughput/1e9)
	}
	if len(res.Tuned.Movements) > 0 {
		fmt.Println("\nGeomancy data movements:")
		for _, m := range res.Tuned.Movements {
			fmt.Printf("  after access %6d: %d files\n", m.AccessIndex, m.Moved)
		}
	}
	fmt.Printf("\nphase means: before %.2f GB/s, early interference %.2f GB/s, after adaptation %.2f GB/s\n",
		res.PreMean/1e9, res.DipMean/1e9, res.RecoveredMean/1e9)
}
