// Checkpoint and resume: run half a deployment, snapshot it, throw the
// system away (standing in for a crash or restart), restore from the
// snapshot, and finish — then prove the stitched-together run is
// bit-identical to an uninterrupted run of the same seed.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"

	"geomancy"
)

const (
	totalRuns    = 12
	checkpointAt = 6
)

func options(dir string) []geomancy.Option {
	return []geomancy.Option{
		geomancy.WithSeed(7),
		geomancy.WithCooldown(2),
		geomancy.WithBootstrapRuns(2),
		geomancy.WithEpochs(5),
		geomancy.WithTrainingWindow(400),
		geomancy.WithCheckpointDir(dir),
	}
}

func main() {
	dir, err := os.MkdirTemp("", "geomancy-resume-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Reference: the same seed, uninterrupted.
	ref, err := geomancy.New(options(filepath.Join(dir, "ref"))...)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ref.RunN(totalRuns); err != nil {
		log.Fatal(err)
	}
	refLayout := ref.Layout()
	refMean := ref.MeanThroughput()
	ref.Close()

	// Leg 1: run to the checkpoint, then "crash" (Close flushes a final
	// snapshot into the checkpoint directory).
	ckptDir := filepath.Join(dir, "live")
	sys, err := geomancy.New(options(ckptDir)...)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.RunN(checkpointAt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d/%d runs, snapshotting and shutting down\n", checkpointAt, totalRuns)
	if err := sys.Close(); err != nil {
		log.Fatal(err)
	}

	// Leg 2: a fresh process resumes from the newest snapshot. The
	// options must repeat the original configuration — only dynamic
	// state lives in the snapshot.
	sys, err = geomancy.RestoreLatest(ckptDir, options(ckptDir)...)
	if errors.Is(err, geomancy.ErrNoCheckpoint) {
		log.Fatal("no snapshot to resume from (unexpected here)")
	}
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	fmt.Printf("resumed at run %d\n", len(sys.Stats()))
	if _, err := sys.RunN(totalRuns - checkpointAt); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("uninterrupted: mean %.3f GB/s over %d runs\n", refMean/1e9, totalRuns)
	fmt.Printf("resumed:       mean %.3f GB/s over %d runs\n", sys.MeanThroughput()/1e9, len(sys.Stats()))
	switch {
	case !reflect.DeepEqual(sys.Layout(), refLayout):
		fmt.Println("FAIL: final layouts differ")
	case sys.MeanThroughput() != refMean:
		fmt.Println("FAIL: throughput trajectories differ")
	default:
		fmt.Println("resume is bit-identical to the uninterrupted run")
	}
}
