package geomancy

import (
	"encoding/json"
	"testing"
)

// newSeededSystem builds a small closed loop with a fixed seed and a
// four-worker engine pool, the configuration most likely to expose
// scheduling-order nondeterminism.
func newSeededSystem(t *testing.T) *System {
	t.Helper()
	sys, err := New(
		WithSeed(11),
		WithParallelism(4),
		WithEpochs(4),
		WithTrainingWindow(300),
		WithCooldown(2),
		WithBootstrapRuns(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

// TestSeededRunsAreReproducible: two systems built from the same seed
// must converge on byte-identical layouts and identical replay-DB record
// counts after the same number of runs, even with Parallelism=4. This is
// the invariant the determinism analyzer exists to protect: a stray
// time.Now, global rand call, or map-iteration escape in the core
// packages shows up here as a layout divergence.
func TestSeededRunsAreReproducible(t *testing.T) {
	const runs = 12

	a := newSeededSystem(t)
	b := newSeededSystem(t)

	if _, err := a.RunN(runs); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RunN(runs); err != nil {
		t.Fatal(err)
	}

	layoutA, err := json.Marshal(a.Layout())
	if err != nil {
		t.Fatal(err)
	}
	layoutB, err := json.Marshal(b.Layout())
	if err != nil {
		t.Fatal(err)
	}
	if string(layoutA) != string(layoutB) {
		t.Errorf("layouts diverged after %d seeded runs:\n  a: %s\n  b: %s", runs, layoutA, layoutB)
	}

	if a.Telemetry() != b.Telemetry() {
		t.Errorf("replay DB diverged after %d seeded runs: a has %d records, b has %d",
			runs, a.Telemetry(), b.Telemetry())
	}

	if len(a.Movements()) != len(b.Movements()) {
		t.Errorf("movement logs diverged: a recorded %d movements, b recorded %d",
			len(a.Movements()), len(b.Movements()))
	}
}
